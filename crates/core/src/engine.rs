//! Shared slot-execution engine for SCAT and FCAT.
//!
//! One `Engine` instance owns the simulated world state of a run: the
//! still-active tags, the reader's collision-record store, and the report
//! being built. SCAT and FCAT differ only in *when* they advertise, *how*
//! they acknowledge resolved records, and how they adapt the report
//! probability — all of which stay in the protocol modules.
//!
//! # Hot-path layout
//!
//! The engine runs one slot per call over populations of tens of thousands
//! of tags, so the slot loop is organized around two ideas:
//!
//! * **Dense tag handles.** Every tag is interned into a `u32` index at
//!   construction (via the record store, which shares the table). The
//!   active set, the position map, and the per-tag cached hash state are
//!   then plain vectors — no SipHash probe anywhere in the loop.
//! * **No steady-state allocation.** The transmitter list, the resolution
//!   buffer, and (at signal level) the waveform all live in scratch
//!   buffers owned by the engine and reused across slots.

use crate::backend::{BackendModel, CollisionContext, CollisionOutcome, RecoveryBackend};
use crate::config::{Fidelity, Membership};
use crate::lambda::LambdaController;
use crate::records::{
    CollisionRecordStore, FailedResolution, RecordStats, ResolutionAttemptLog, Resolved,
};
use crate::resolution::{RecoveryPolicy, ResolutionModel};
use rand::rngs::StdRng;
use rand::Rng;
use rfid_obs::{EstimatorEvent, EventSink, LambdaEvent, RecordEvent, RecordEventKind, SlotEvent};
use rfid_signal::anc;
use rfid_signal::complex::Complex;
use rfid_sim::sampling::{pick_distinct_indices_into, sample_binomial};
use rfid_sim::{derive_seed, ErrorModel, InventoryReport, SimConfig, SimError, TraceEvent};
use rfid_types::hash::{effective_probability, probability_threshold, TagHashState};
use rfid_types::{SlotClass, TagId};

/// Sentinel in the dense position map for "not active".
const NOT_ACTIVE: u32 = u32::MAX;

/// Stream tag for the signal-backed resolution noise-seed, derived from
/// the run seed. `u64::MAX` is the rounds population stream and
/// `index*2(+1)` the per-run streams, so `u64::MAX - 2` cannot collide
/// with either. The derived value is the *master* of the store's
/// per-record `(seed, record, hop)` counter-stream family; shared with the
/// message-level device reader so both layers realize the same noise.
pub(crate) const RESOLUTION_RNG_STREAM: u64 = u64::MAX - 2;

/// Stream tag for the collision-recovery backend's per-slot draws
/// (compressed sensing's success probability). Reserved alongside
/// [`RESOLUTION_RNG_STREAM`]: `u64::MAX` is the rounds population stream,
/// `index*2(+1)` the per-run streams, and `u64::MAX - 2` the resolution
/// noise master, so `u64::MAX - 3` cannot collide with any of them. The
/// derived value masters the backend's `(seed, slot)` counter-stream
/// family — backend draws can never perturb the protocol RNG trajectory.
pub(crate) const BACKEND_RNG_STREAM: u64 = u64::MAX - 3;

/// A re-query slot scheduled by [`RecoveryPolicy::Requery`] after a failed
/// signal-backed resolution.
#[derive(Debug, Clone, Copy)]
struct PendingRequery {
    /// Dense index of the unresolved tag.
    idx: u32,
    /// Slot index of the record whose resolution failed (for obs events).
    record_slot: u64,
    /// 1-based attempt counter.
    attempt: u32,
    /// Earliest slot index at which the re-query may run.
    due_slot: u64,
}

/// What one slot produced, as seen by the protocol layer. The protocol
/// loops keep one instance alive and pass it back in; [`Engine::run_slot`]
/// clears it on entry.
#[derive(Debug, Default)]
pub(crate) struct SlotOutput {
    /// Coarse class the reader observed (corrupted singletons classify as
    /// collisions, captured collisions as singletons).
    pub class: Option<SlotClass>,
    /// IDs newly learned by resolving collision records this slot.
    pub resolved: Vec<Resolved>,
}

impl SlotOutput {
    fn clear(&mut self) {
        self.class = None;
        self.resolved.clear();
    }
}

/// The engine is generic over its [`EventSink`]: every emission sits
/// behind `if S::ENABLED`, a compile-time constant, so running with
/// [`rfid_obs::NoopSink`] compiles the whole observability path away. The
/// sink only ever receives copies of state — it cannot touch the RNG or
/// the world, which is what keeps traced and untraced runs identical.
pub(crate) struct Engine<'a, S: EventSink> {
    /// Still-active tags, as dense indices into the store's tag table.
    active: Vec<u32>,
    /// Cached ID-only hash rounds, parallel to `active` (same order, same
    /// swap-removes): the Hash-membership scan is a linear sweep of this
    /// array doing one splitmix round per tag — no gather, no hashing.
    active_states: Vec<TagHashState>,
    /// Dense index → position in `active` ([`NOT_ACTIVE`] when removed).
    position: Vec<u32>,
    pub records: CollisionRecordStore,
    membership: Membership,
    fidelity: &'a Fidelity,
    /// Failure handling for signal-backed resolutions.
    recovery: RecoveryPolicy,
    /// Collision-recovery backend: what a collision slot turns into
    /// (ANC record, immediate multi-decode, or nothing). Consulted only
    /// under [`Fidelity::SlotLevel`], like the resolution model.
    backend: BackendModel,
    /// Master seed of the backend's per-slot draw streams, derived from
    /// the run seed on [`BACKEND_RNG_STREAM`].
    backend_seed: u64,
    /// Re-query slots awaiting execution ([`RecoveryPolicy::Requery`]).
    requeries: Vec<PendingRequery>,
    errors: ErrorModel,
    slot_us: f64,
    max_slots: u64,
    hash_bits: u32,
    trace: bool,
    total_tags: usize,
    pub slot_index: u64,
    pub report: InventoryReport,
    sink: S,
    /// This slot's transmitters (dense indices), reused across slots.
    tx_scratch: Vec<u32>,
    /// Sampled-membership draw buffer for distinct active-set positions.
    pos_scratch: Vec<usize>,
    /// Cascade output buffer for the record store.
    resolved_scratch: Vec<(u32, Resolved)>,
    /// Signal-level: this slot's transmitter IDs (waveform synthesis order).
    id_scratch: Vec<TagId>,
    /// Signal-level: this slot's superposed reception.
    wave_scratch: Vec<Complex>,
    /// Signal-level: per-component modulation workspace.
    mix_scratch: anc::MixScratch,
    /// Drain buffer for the store's resolution-attempt log.
    attempt_scratch: Vec<ResolutionAttemptLog>,
    /// Drain buffer for the store's resolution-failure log.
    failure_scratch: Vec<FailedResolution>,
    /// Adaptive-λ control loop, when the run's `LambdaPolicy` asks for
    /// one. Fed from the same attempt log the observability layer reads.
    lambda_ctl: Option<LambdaController>,
}

impl<'a, S: EventSink> Engine<'a, S> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        tags: &[TagId],
        lambda: u32,
        membership: Membership,
        fidelity: &'a Fidelity,
        resolution: &ResolutionModel,
        recovery: RecoveryPolicy,
        backend: BackendModel,
        config: &SimConfig,
        sink: S,
    ) -> Self {
        let mut records = match fidelity {
            // The resolution model only has meaning at slot level; at
            // signal level the records carry waveforms recorded off the
            // simulated air and physics already decides every resolution.
            Fidelity::SlotLevel => match resolution {
                ResolutionModel::Ideal => CollisionRecordStore::slot_level(lambda),
                ResolutionModel::SignalBacked(cfg) => CollisionRecordStore::signal_backed(
                    lambda,
                    cfg.clone(),
                    recovery,
                    derive_seed(config.seed(), RESOLUTION_RNG_STREAM),
                ),
            },
            Fidelity::SignalLevel(sig) => CollisionRecordStore::signal_level(sig.msk.clone()),
        };
        records.set_attempt_logging(S::ENABLED);
        records.set_threads(config.threads());
        records.reserve_tags(tags.len());
        let mut active = Vec::with_capacity(tags.len());
        let mut active_states = Vec::with_capacity(tags.len());
        let mut position = Vec::with_capacity(tags.len());
        for (i, &tag) in tags.iter().enumerate() {
            let idx = records.intern(tag);
            if idx as usize == position.len() {
                position.push(NOT_ACTIVE);
            }
            // A duplicated input tag keeps its *last* occurrence's
            // position, matching the map-building this replaced.
            position[idx as usize] = u32::try_from(i).expect("population exceeds u32");
            active.push(idx);
            active_states.push(TagHashState::new(tag));
        }
        let mut report = InventoryReport::new(name);
        report.reserve_identified(tags.len());
        Engine {
            active,
            active_states,
            position,
            records,
            membership,
            fidelity,
            recovery,
            backend,
            backend_seed: derive_seed(config.seed(), BACKEND_RNG_STREAM),
            requeries: Vec::new(),
            errors: config.errors().clone(),
            slot_us: config.timing().basic_slot_us(),
            max_slots: config.max_slots(),
            hash_bits: config.hash_bits(),
            trace: config.trace_enabled(),
            total_tags: tags.len(),
            slot_index: 0,
            report,
            sink,
            tx_scratch: Vec::new(),
            pos_scratch: Vec::new(),
            resolved_scratch: Vec::new(),
            id_scratch: Vec::new(),
            wave_scratch: Vec::new(),
            mix_scratch: anc::MixScratch::default(),
            attempt_scratch: Vec::new(),
            failure_scratch: Vec::new(),
            lambda_ctl: None,
        }
    }

    /// Attaches an adaptive-λ controller (built by the protocol from the
    /// run's [`rfid_sim::LambdaPolicy`]). The store's attempt log is the
    /// controller's food, so logging turns on even when the sink is a
    /// no-op; [`Self::harvest_resolutions`] drains it either way.
    pub fn set_lambda_controller(&mut self, ctl: Option<LambdaController>) {
        self.records
            .set_attempt_logging(S::ENABLED || ctl.is_some());
        self.lambda_ctl = ctl;
        if let Some(ctl) = &self.lambda_ctl {
            // Seed the trajectory (and the store's gate, in case the
            // policy's bounds clamped the configured λ) with the starting
            // selection, so consumers always see the full λ history.
            let (lambda, omega) = (ctl.lambda(), ctl.omega());
            self.records.set_lambda(lambda);
            self.report
                .record_lambda_point(rfid_sim::LambdaTrajectoryPoint {
                    slot: self.slot_index,
                    lambda,
                    omega,
                });
            if S::ENABLED {
                self.sink.lambda(&LambdaEvent {
                    slot: self.slot_index,
                    lambda,
                    omega,
                });
            }
        }
    }

    /// Protocol decision point for the adaptive-λ loop (FCAT calls this at
    /// frame boundaries, SCAT per round): asks the controller for a
    /// decision and, when λ changes, re-gates the record store, emits a
    /// [`LambdaEvent`], and appends to the report's λ trajectory. Returns
    /// the new `(λ, ω*)` so the caller can re-derive its report
    /// probability.
    pub fn maybe_adjust_lambda(&mut self) -> Option<(u32, f64)> {
        let (lambda, omega) = self.lambda_ctl.as_mut()?.decide()?;
        self.records.set_lambda(lambda);
        let slot = self.slot_index;
        self.report
            .record_lambda_point(rfid_sim::LambdaTrajectoryPoint {
                slot,
                lambda,
                omega,
            });
        if S::ENABLED {
            self.sink.lambda(&LambdaEvent {
                slot,
                lambda,
                omega,
            });
        }
        Some((lambda, omega))
    }

    /// Forwards a population-estimate revision to the sink. Callers should
    /// guard both the call and the event construction with `if S::ENABLED`.
    pub fn emit_estimator(&mut self, event: EstimatorEvent) {
        if S::ENABLED {
            self.sink.estimator(&event);
        }
    }

    pub fn remaining(&self) -> usize {
        self.active.len()
    }

    fn remove_active(&mut self, idx: u32) {
        let pos = self.position[idx as usize];
        if pos != NOT_ACTIVE {
            self.position[idx as usize] = NOT_ACTIVE;
            self.active.swap_remove(pos as usize);
            self.active_states.swap_remove(pos as usize);
            if let Some(&moved) = self.active.get(pos as usize) {
                self.position[moved as usize] = pos;
            }
        }
    }

    /// Fills `out` with this slot's transmitters under the configured
    /// membership mode.
    fn fill_transmitters(
        &self,
        p: f64,
        rng: &mut StdRng,
        out: &mut Vec<u32>,
        positions: &mut Vec<usize>,
    ) {
        out.clear();
        match self.membership {
            Membership::Sampled => {
                // Quantize exactly as the hash test would (the inclusive
                // `H ≤ ⌊p·2^l⌋` rule realizes one quantum above the floor)
                // so the two membership modes stay distribution-identical.
                let k = sample_binomial(
                    self.active.len(),
                    effective_probability(p, self.hash_bits),
                    rng,
                );
                pick_distinct_indices_into(self.active.len(), k, rng, positions);
                out.extend(positions.iter().map(|&i| self.active[i]));
            }
            Membership::Hash => {
                if p <= 0.0 {
                    return;
                }
                let slot = self.slot_index;
                let threshold = probability_threshold(p, self.hash_bits);
                let l = self.hash_bits;
                for (&state, &idx) in self.active_states.iter().zip(&self.active) {
                    if state.transmits(slot, threshold, l) {
                        out.push(idx);
                    }
                }
            }
        }
    }

    /// Runs one slot at probability `p`, leaving the outcome in `output`
    /// (cleared on entry). Charges one basic slot of air time; the caller
    /// layers advertisement / extended-ack overhead on top via
    /// [`InventoryReport::record_overhead`].
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxSlots`] when the safety cap is hit.
    pub fn run_slot(
        &mut self,
        p: f64,
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) -> Result<(), SimError> {
        output.clear();
        if self.slot_index >= self.max_slots {
            return Err(SimError::ExceededMaxSlots {
                max_slots: self.max_slots,
                identified: self.report.identified,
                total: self.total_tags,
            });
        }
        let mut transmitters = std::mem::take(&mut self.tx_scratch);
        let mut positions = std::mem::take(&mut self.pos_scratch);
        self.fill_transmitters(p, rng, &mut transmitters, &mut positions);
        self.pos_scratch = positions;
        self.slot_index += 1;
        let transmitter_count = transmitters.len() as u32;
        let identified_before = self.report.identified;
        let resolved_before = self.report.resolved_from_collisions;
        let stats_before = self.records.stats();

        // Copy out the `&'a Fidelity` reference so the match does not hold
        // a borrow of `self` (this is also what lets the signal path avoid
        // the per-slot config clone it used to make).
        let fidelity = self.fidelity;
        match fidelity {
            Fidelity::SlotLevel => self.run_slot_abstract(&transmitters, rng, output),
            Fidelity::SignalLevel(sig) => self.run_slot_signal(sig, &transmitters, rng, output),
        }
        self.tx_scratch = transmitters;
        if self.trace {
            self.report.record_trace_event(TraceEvent {
                slot: self.slot_index - 1,
                class: output.class.unwrap_or(SlotClass::Empty),
                transmitters: transmitter_count,
                learned: (self.report.identified - identified_before) as u32,
            });
        }
        let slot = self.slot_index - 1;
        self.emit_store_deltas(slot, stats_before);
        if S::ENABLED {
            let learned = (self.report.identified - identified_before) as u32;
            let learned_resolved = (self.report.resolved_from_collisions - resolved_before) as u32;
            self.sink.slot(&SlotEvent {
                slot,
                class: output.class.unwrap_or(SlotClass::Empty),
                transmitters: transmitter_count,
                p,
                learned_direct: learned - learned_resolved,
                learned_resolved,
                records_outstanding: self.records.outstanding() as u64,
            });
        }
        self.harvest_resolutions(slot);
        Ok(())
    }

    /// Surfaces exhaustions and failed resolution attempts that happened
    /// deep inside the cascade, from the store's counter deltas.
    fn emit_store_deltas(&mut self, slot: u64, before: RecordStats) {
        if S::ENABLED {
            let stats = self.records.stats();
            for _ in before.exhausted..stats.exhausted {
                self.sink.record(&RecordEvent {
                    slot,
                    record_slot: slot,
                    kind: RecordEventKind::Exhausted,
                });
            }
            for _ in before.failed_attempts..stats.failed_attempts {
                self.sink.record(&RecordEvent {
                    slot,
                    record_slot: slot,
                    kind: RecordEventKind::Failed,
                });
            }
        }
    }

    /// Drains the store's per-attempt and failure logs accumulated during
    /// `slot`: attempts become [`RecordEventKind::Attempted`] events, and
    /// failures become pending re-query slots when the recovery policy
    /// asks for them.
    fn harvest_resolutions(&mut self, slot: u64) {
        // The attempt log feeds two consumers: the sink (when enabled) and
        // the adaptive-λ controller (when attached). Drain it whenever
        // either is present.
        if S::ENABLED || self.lambda_ctl.is_some() {
            let mut attempts = std::mem::take(&mut self.attempt_scratch);
            debug_assert!(attempts.is_empty());
            self.records.swap_attempt_log(&mut attempts);
            for a in &attempts {
                if S::ENABLED {
                    self.sink.record(&RecordEvent {
                        slot,
                        record_slot: a.record_slot,
                        kind: RecordEventKind::Attempted {
                            hop: a.hop,
                            residual_snr_db: a.residual_snr_db,
                            success: a.success,
                        },
                    });
                }
                if let Some(ctl) = self.lambda_ctl.as_mut() {
                    ctl.observe(a.residual_snr_db);
                }
            }
            attempts.clear();
            self.attempt_scratch = attempts;
        }
        if let RecoveryPolicy::Requery { backoff_slots, .. } = self.recovery {
            let mut failures = std::mem::take(&mut self.failure_scratch);
            debug_assert!(failures.is_empty());
            self.records.swap_failed_log(&mut failures);
            for f in &failures {
                let due_slot = self.slot_index + u64::from(backoff_slots.max(1));
                self.requeries.push(PendingRequery {
                    idx: f.unknown,
                    record_slot: f.record_slot,
                    attempt: 1,
                    due_slot,
                });
                if S::ENABLED {
                    self.sink.record(&RecordEvent {
                        slot,
                        record_slot: f.record_slot,
                        kind: RecordEventKind::RequeryScheduled {
                            attempt: 1,
                            due_slot,
                        },
                    });
                }
            }
            failures.clear();
            self.failure_scratch = failures;
        }
    }

    /// Executes every due re-query slot: the reader addresses one
    /// unresolved tag (by the failed record's slot index), the tag
    /// retransmits alone, and the reader attempts a singleton decode.
    /// Success identifies the tag (and cascades); failure backs off
    /// linearly and retries up to the policy's bound, after which the tag
    /// simply stays in open contention — completeness never depends on a
    /// re-query succeeding.
    ///
    /// Returns the number of re-query slots executed (each charged one
    /// basic slot of air time; the caller layers command overhead on top).
    /// Resolved tags accumulate in `output` for ack accounting.
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxSlots`] when the safety cap is hit.
    pub fn drain_requeries(
        &mut self,
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) -> Result<u32, SimError> {
        output.clear();
        if self.requeries.is_empty() {
            return Ok(0);
        }
        let RecoveryPolicy::Requery {
            max_retries,
            backoff_slots,
        } = self.recovery
        else {
            return Ok(0);
        };
        let mut executed = 0u32;
        while let Some(pos) = self
            .requeries
            .iter()
            .position(|r| r.due_slot <= self.slot_index)
        {
            let pending = self.requeries.swap_remove(pos);
            if self.records.is_known_dense(pending.idx) {
                // Identified through open contention in the meantime; the
                // reader cancels the re-query for free.
                continue;
            }
            if self.slot_index >= self.max_slots {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: self.max_slots,
                    identified: self.report.identified,
                    total: self.total_tags,
                });
            }
            self.slot_index += 1;
            executed += 1;
            let slot = self.slot_index - 1;
            let identified_before = self.report.identified;
            let resolved_before = self.report.resolved_from_collisions;
            let stats_before = self.records.stats();
            let success = self.records.requery_singleton(pending.idx);
            let class = if success {
                self.report.record_slot(SlotClass::Singleton, self.slot_us);
                self.process_singleton(pending.idx, rng, output);
                SlotClass::Singleton
            } else {
                // The addressed retransmission came back undecodable; the
                // reader observes garbage, i.e. a collision-class slot.
                self.report.record_slot(SlotClass::Collision, self.slot_us);
                if pending.attempt < max_retries {
                    let attempt = pending.attempt + 1;
                    let due_slot =
                        self.slot_index + u64::from(backoff_slots.max(1)) * u64::from(attempt);
                    self.requeries.push(PendingRequery {
                        attempt,
                        due_slot,
                        ..pending
                    });
                    if S::ENABLED {
                        self.sink.record(&RecordEvent {
                            slot,
                            record_slot: pending.record_slot,
                            kind: RecordEventKind::RequeryScheduled { attempt, due_slot },
                        });
                    }
                }
                SlotClass::Collision
            };
            self.report.requery_slots += 1;
            if S::ENABLED {
                self.sink.record(&RecordEvent {
                    slot,
                    record_slot: pending.record_slot,
                    kind: RecordEventKind::Requeried {
                        attempt: pending.attempt,
                        success,
                    },
                });
            }
            if self.trace {
                self.report.record_trace_event(TraceEvent {
                    slot,
                    class,
                    transmitters: 1,
                    learned: (self.report.identified - identified_before) as u32,
                });
            }
            self.emit_store_deltas(slot, stats_before);
            if S::ENABLED {
                let learned = (self.report.identified - identified_before) as u32;
                let learned_resolved =
                    (self.report.resolved_from_collisions - resolved_before) as u32;
                self.sink.slot(&SlotEvent {
                    slot,
                    class,
                    transmitters: 1,
                    p: 1.0,
                    learned_direct: learned - learned_resolved,
                    learned_resolved,
                    records_outstanding: self.records.outstanding() as u64,
                });
            }
            // A successful re-query's cascade can fail *other* records;
            // harvest so those failures get their own re-query slots.
            self.harvest_resolutions(slot);
        }
        Ok(executed)
    }

    /// Emits a [`RecordEventKind::Created`] for the record about to be
    /// deposited this slot.
    fn emit_record_created(&mut self, participants: usize, usable: bool) {
        if S::ENABLED {
            let slot = self.slot_index - 1;
            let usable = self.records.usable_at_insert(participants, usable);
            self.sink.record(&RecordEvent {
                slot,
                record_slot: slot,
                kind: RecordEventKind::Created {
                    participants: participants as u32,
                    usable,
                },
            });
        }
    }

    /// Deposits this slot's collision record and processes any cascade of
    /// resolutions through the reused scratch buffer.
    fn deposit_record(
        &mut self,
        transmitters: &[u32],
        usable: bool,
        signal: Option<Vec<Complex>>,
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) {
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        debug_assert!(resolved.is_empty());
        self.records.add_record_dense(
            self.slot_index - 1,
            transmitters,
            usable,
            signal,
            &mut resolved,
        );
        self.process_resolved(&resolved, rng, output);
        resolved.clear();
        self.resolved_scratch = resolved;
    }

    /// Slot-level classification: counts decide; λ decides resolvability.
    fn run_slot_abstract(
        &mut self,
        transmitters: &[u32],
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) {
        match transmitters.len() {
            0 => {
                self.report.record_slot(SlotClass::Empty, self.slot_us);
                output.class = Some(SlotClass::Empty);
            }
            1 => {
                if self.errors.sample_report_corrupted(rng) {
                    // The reader records an unusable mixed signal.
                    self.report.record_slot(SlotClass::Collision, self.slot_us);
                    output.class = Some(SlotClass::Collision);
                    self.handle_collision(transmitters, false, rng, output);
                } else {
                    self.report.record_slot(SlotClass::Singleton, self.slot_us);
                    output.class = Some(SlotClass::Singleton);
                    self.process_singleton(transmitters[0], rng, output);
                }
            }
            _ => {
                if self.errors.sample_capture(rng) {
                    // Capture effect: the dominant component decodes as a
                    // singleton; the other transmissions go unrecorded.
                    let winner = transmitters[rng.gen_range(0..transmitters.len())];
                    self.report.record_slot(SlotClass::Singleton, self.slot_us);
                    output.class = Some(SlotClass::Singleton);
                    self.process_singleton(winner, rng, output);
                    return;
                }
                self.report.record_slot(SlotClass::Collision, self.slot_us);
                output.class = Some(SlotClass::Collision);
                let spoiled = self.errors.sample_unresolvable(rng)
                    || self.errors.sample_report_corrupted(rng);
                self.handle_collision(transmitters, !spoiled, rng, output);
            }
        }
    }

    /// Routes a collision-class slot through the configured recovery
    /// backend, *after* the error-model draws (so the protocol RNG
    /// trajectory is independent of the backend). ANC always answers
    /// [`CollisionOutcome::Record`] and takes exactly the pre-trait
    /// deposit path; MPR/CS either decode the whole slot now or lose it —
    /// they never deposit records.
    fn handle_collision(
        &mut self,
        transmitters: &[u32],
        usable: bool,
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) {
        let ctx = CollisionContext {
            participants: transmitters.len() as u32,
            spoiled: !usable,
            slot: self.slot_index - 1,
            seed: self.backend_seed,
        };
        match self.backend.decide(&ctx) {
            CollisionOutcome::Record => {
                self.emit_record_created(transmitters.len(), usable);
                self.deposit_record(transmitters, usable, None, rng, output);
            }
            CollisionOutcome::DecodeAll => self.decode_all(transmitters, rng, output),
            CollisionOutcome::Lost => {}
        }
    }

    /// Decodes every reply of a collision slot in place (MPR separation or
    /// a successful sparse recovery): each tag is counted as resolved from
    /// a collision, acknowledged, and appended to the slot output so the
    /// protocols charge the same per-ID ack overhead as for ANC-resolved
    /// records.
    fn decode_all(&mut self, transmitters: &[u32], rng: &mut StdRng, output: &mut SlotOutput) {
        let slot = self.slot_index - 1;
        if S::ENABLED {
            self.sink.record(&RecordEvent {
                slot,
                record_slot: slot,
                kind: RecordEventKind::Recovered {
                    backend: match self.backend {
                        BackendModel::Anc => rfid_obs::RecoveryBackendTag::Anc,
                        BackendModel::Mpr(_) => rfid_obs::RecoveryBackendTag::Mpr,
                        BackendModel::CompressedSensing(_) => rfid_obs::RecoveryBackendTag::Cs,
                    },
                    decoded: transmitters.len() as u32,
                },
            });
        }
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        for &idx in transmitters {
            debug_assert!(resolved.is_empty());
            let tag = self.records.tag_of(idx);
            self.report.record_resolved_from_collision(tag);
            // Mark known (no-op for an already-identified tag whose ack
            // was lost); any cascade through outstanding ANC records is
            // processed uniformly, though non-ANC backends never deposit
            // records for one to exist.
            self.records.learn_dense(idx, &mut resolved);
            if !self.errors.sample_ack_lost(rng) {
                self.remove_active(idx);
            }
            output.resolved.push(Resolved { tag, slot });
            self.process_resolved(&resolved, rng, output);
            resolved.clear();
        }
        self.resolved_scratch = resolved;
    }

    /// Signal-level classification: synthesize the superposed waveform,
    /// energy-detect, demodulate, CRC-check. Capture effects and noise
    /// misclassifications happen when physics says so.
    fn run_slot_signal(
        &mut self,
        sig: &crate::config::SignalLevelConfig,
        transmitters: &[u32],
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) {
        let mut ids = std::mem::take(&mut self.id_scratch);
        ids.clear();
        ids.extend(transmitters.iter().map(|&idx| self.records.tag_of(idx)));
        let mut wave = std::mem::take(&mut self.wave_scratch);
        let mut mix = std::mem::take(&mut self.mix_scratch);
        anc::transmit_mixed_into(&ids, &sig.msk, &sig.channel, rng, &mut mix, &mut wave);
        self.mix_scratch = mix;
        // Energy detection: the noise floor per complex sample is 2σ²; a
        // +6 dB margin separates "silence" from any real component (whose
        // minimum power is attenuation_lo² ≥ 0.25 by default).
        let noise_floor = 2.0 * sig.channel.noise_std().powi(2);
        let power = rfid_signal::complex::mean_power(&wave);
        if power <= 4.0 * noise_floor + f64::EPSILON {
            self.report.record_slot(SlotClass::Empty, self.slot_us);
            output.class = Some(SlotClass::Empty);
            debug_assert!(transmitters.is_empty() || sig.channel.noise_std() > 0.0);
        } else {
            match anc::decode_singleton(&wave, &sig.msk) {
                Some(id) if ids.contains(&id) => {
                    // Clean singleton, or a collision captured by its
                    // dominant component — either way the reader reads one
                    // valid ID and the other transmitters (if any) go
                    // unrecorded.
                    let idx = transmitters[ids.iter().position(|&t| t == id).unwrap()];
                    self.report.record_slot(SlotClass::Singleton, self.slot_us);
                    output.class = Some(SlotClass::Singleton);
                    self.process_singleton(idx, rng, output);
                }
                Some(_) | None => {
                    // Undecodable mixture (or a CRC-colliding ghost ID,
                    // which the 2^-16 CRC makes vanishingly rare; the
                    // reader must not ack an ID nobody sent, so ghosts
                    // classify as collisions). The record owns its
                    // waveform; copying into a buffer reclaimed from a
                    // consumed record keeps the steady state allocation-
                    // free where a plain clone allocated every slot.
                    self.report.record_slot(SlotClass::Collision, self.slot_us);
                    output.class = Some(SlotClass::Collision);
                    self.emit_record_created(transmitters.len(), true);
                    let mut copy = self.records.pooled_wave_buffer();
                    copy.clear();
                    copy.extend_from_slice(&wave);
                    self.deposit_record(transmitters, true, Some(copy), rng, output);
                }
            }
        }
        self.id_scratch = ids;
        self.wave_scratch = wave;
    }

    /// Handles a decoded singleton: learn, cascade, acknowledge.
    fn process_singleton(&mut self, idx: u32, rng: &mut StdRng, output: &mut SlotOutput) {
        self.report.record_identified(self.records.tag_of(idx));
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        debug_assert!(resolved.is_empty());
        self.records.learn_dense(idx, &mut resolved);
        if !self.errors.sample_ack_lost(rng) {
            self.remove_active(idx);
        }
        self.process_resolved(&resolved, rng, output);
        resolved.clear();
        self.resolved_scratch = resolved;
    }

    /// Handles IDs recovered from collision records: count them, append to
    /// the slot output (for ack-payload accounting), acknowledge.
    fn process_resolved(
        &mut self,
        resolved: &[(u32, Resolved)],
        rng: &mut StdRng,
        output: &mut SlotOutput,
    ) {
        for (position, &(idx, r)) in resolved.iter().enumerate() {
            if S::ENABLED {
                let slot = self.slot_index - 1;
                self.sink.record(&RecordEvent {
                    slot,
                    record_slot: r.slot,
                    kind: RecordEventKind::Resolved {
                        tag: r.tag,
                        cascade_depth: position as u32 + 1,
                        latency_slots: slot.saturating_sub(r.slot),
                    },
                });
            }
            self.report.record_resolved_from_collision(r.tag);
            if !self.errors.sample_ack_lost(rng) {
                self.remove_active(idx);
            }
            output.resolved.push(r);
        }
    }

    /// Finishes the run: charges the termination detection cost (the
    /// reader observes `empty_streak` consecutive empty slots, then issues
    /// one `p = 1` probe slot that also comes back empty, §IV-A) and
    /// returns the report.
    pub fn finish(mut self, empty_streak: u32) -> InventoryReport {
        debug_assert!(self.active.is_empty());
        for _ in 0..=empty_streak {
            self.report.record_slot(SlotClass::Empty, self.slot_us);
            if self.trace {
                self.report.record_trace_event(TraceEvent {
                    slot: self.slot_index,
                    class: SlotClass::Empty,
                    transmitters: 0,
                    learned: 0,
                });
            }
            if S::ENABLED {
                // The termination tail is charged, not simulated; it ends
                // with the p = 1 probe, so that is the advertised
                // probability attributed here. Emitting these keeps a
                // replayed trace's slot-class totals equal to the report's.
                self.sink.slot(&SlotEvent {
                    slot: self.slot_index,
                    class: SlotClass::Empty,
                    transmitters: 0,
                    p: 1.0,
                    learned_direct: 0,
                    learned_resolved: 0,
                    records_outstanding: self.records.outstanding() as u64,
                });
            }
            self.slot_index += 1;
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignalLevelConfig;
    use rfid_obs::NoopSink;
    use rfid_sim::seeded_rng;
    use rfid_types::population;

    fn engine<'a>(tags: &[TagId], fidelity: &'a Fidelity) -> Engine<'a, NoopSink> {
        Engine::new(
            "test",
            tags,
            2,
            Membership::Sampled,
            fidelity,
            &ResolutionModel::Ideal,
            RecoveryPolicy::DropRecord,
            BackendModel::default(),
            &SimConfig::default(),
            NoopSink,
        )
    }

    #[test]
    fn p_zero_slot_is_empty() {
        let tags = population::uniform(&mut seeded_rng(1), 10);
        let fidelity = Fidelity::SlotLevel;
        let mut e = engine(&tags, &fidelity);
        let mut out = SlotOutput::default();
        e.run_slot(0.0, &mut seeded_rng(2), &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Empty));
        assert_eq!(e.remaining(), 10);
    }

    #[test]
    fn p_one_single_tag_is_singleton() {
        let tags = population::uniform(&mut seeded_rng(1), 1);
        let fidelity = Fidelity::SlotLevel;
        let mut e = engine(&tags, &fidelity);
        let mut out = SlotOutput::default();
        e.run_slot(1.0, &mut seeded_rng(2), &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Singleton));
        assert_eq!(e.remaining(), 0);
        assert_eq!(e.report.identified, 1);
    }

    #[test]
    fn p_one_two_tags_collide_then_resolve_via_probe() {
        let tags = population::uniform(&mut seeded_rng(1), 2);
        let fidelity = Fidelity::SlotLevel;
        let mut e = engine(&tags, &fidelity);
        let mut rng = seeded_rng(2);
        let mut out = SlotOutput::default();
        e.run_slot(1.0, &mut rng, &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Collision));
        assert_eq!(e.remaining(), 2);
        // Run at p = 0.5 until one tag hits a singleton; the 2-collision
        // record then resolves the other immediately.
        for _ in 0..200 {
            e.run_slot(0.5, &mut rng, &mut out).unwrap();
            if e.remaining() == 0 {
                assert_eq!(out.resolved.len(), 1);
                break;
            }
        }
        assert_eq!(e.report.identified, 2);
        assert_eq!(e.report.resolved_from_collisions, 1);
    }

    #[test]
    fn hash_membership_equivalent_rate() {
        let tags = population::uniform(&mut seeded_rng(3), 2_000);
        let fidelity = Fidelity::SlotLevel;
        let mut e = Engine::new(
            "t",
            &tags,
            2,
            Membership::Hash,
            &fidelity,
            &ResolutionModel::Ideal,
            RecoveryPolicy::DropRecord,
            BackendModel::default(),
            &SimConfig::default(),
            NoopSink,
        );
        let mut rng = seeded_rng(4);
        // Expected transmitters per slot at p = 1/2000 is 1.
        let mut singletons = 0u32;
        let mut out = SlotOutput::default();
        for _ in 0..600 {
            e.run_slot(1.0 / 2_000.0, &mut rng, &mut out).unwrap();
            if out.class == Some(SlotClass::Singleton) {
                singletons += 1;
            }
        }
        // Poisson(≈1): P(singleton) ≈ 0.368 → ~220 of 600, allow wide band.
        assert!((150..=300).contains(&singletons), "singletons {singletons}");
    }

    #[test]
    fn signal_level_empty_detection_with_noise() {
        let tags: Vec<TagId> = Vec::new();
        let fidelity = Fidelity::SignalLevel(SignalLevelConfig::default());
        let mut e = engine(&tags, &fidelity);
        let mut out = SlotOutput::default();
        e.run_slot(1.0, &mut seeded_rng(5), &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Empty));
    }

    #[test]
    fn signal_level_singleton_reads() {
        let tags = population::uniform(&mut seeded_rng(6), 1);
        let fidelity = Fidelity::SignalLevel(SignalLevelConfig::default());
        let mut e = engine(&tags, &fidelity);
        let mut out = SlotOutput::default();
        e.run_slot(1.0, &mut seeded_rng(7), &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Singleton));
        assert_eq!(e.report.identified, 1);
    }

    #[test]
    fn finish_charges_termination_slots() {
        let tags: Vec<TagId> = Vec::new();
        let fidelity = Fidelity::SlotLevel;
        let e = engine(&tags, &fidelity);
        let report = e.finish(5);
        assert_eq!(report.slots.empty, 6); // streak + probe
    }

    #[test]
    fn max_slots_enforced() {
        let tags = population::uniform(&mut seeded_rng(8), 4);
        let fidelity = Fidelity::SlotLevel;
        let config = SimConfig::default().with_max_slots(3);
        let mut e = Engine::new(
            "t",
            &tags,
            2,
            Membership::Sampled,
            &fidelity,
            &ResolutionModel::Ideal,
            RecoveryPolicy::DropRecord,
            BackendModel::default(),
            &config,
            NoopSink,
        );
        let mut rng = seeded_rng(9);
        let mut out = SlotOutput::default();
        for _ in 0..3 {
            e.run_slot(0.0, &mut rng, &mut out).unwrap();
        }
        assert!(matches!(
            e.run_slot(0.0, &mut rng, &mut out),
            Err(SimError::ExceededMaxSlots { .. })
        ));
    }

    #[test]
    fn configured_hash_bits_flow_into_membership() {
        // l = 1 quantizes probabilities to multiples of 1/2: p = 0.49
        // floors to threshold 0 → ~1/2 of tags transmit each slot (the
        // inclusive rule realizes (⌊0.49·2⌋+1)/2 = 1/2).
        let tags = population::uniform(&mut seeded_rng(10), 400);
        let fidelity = Fidelity::SlotLevel;
        let config = SimConfig::default().with_hash_bits(1).with_max_slots(10);
        let mut e = Engine::new(
            "t",
            &tags,
            2,
            Membership::Hash,
            &fidelity,
            &ResolutionModel::Ideal,
            RecoveryPolicy::DropRecord,
            BackendModel::default(),
            &config,
            NoopSink,
        );
        let mut out = SlotOutput::default();
        let mut tx = Vec::new();
        let mut pos = Vec::new();
        e.fill_transmitters(0.49, &mut seeded_rng(11), &mut tx, &mut pos);
        assert!(
            (120..=280).contains(&tx.len()),
            "l = 1 should gate ~half the tags, got {}",
            tx.len()
        );
        // And the slot still executes under the non-default width.
        e.run_slot(0.49, &mut seeded_rng(12), &mut out).unwrap();
        assert_eq!(out.class, Some(SlotClass::Collision));
    }
}
