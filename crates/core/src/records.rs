//! Collision-record bookkeeping and cascading resolution (§IV-B and the
//! reader pseudocode of §IV-D).
//!
//! Every collision slot deposits a *collision record* — the slot index and
//! (conceptually) the recorded mixed signal. Whenever the reader learns a
//! new ID — from a singleton slot or from resolving another record — it
//! checks every outstanding record that ID participated in; a record whose
//! unknown-participant count drops to one yields the last ID by signal
//! subtraction, and that ID is fed back into the cascade (the `while S ≠ ∅`
//! worklist of the pseudocode).

use crate::inline_vec::InlineVec;
use crate::resolution::{RecoveryPolicy, SignalResolutionConfig};
use rfid_signal::anc::{ReferenceCache, ResolveScratch};
use rfid_signal::channel::ChannelModel;
use rfid_signal::complex::Complex;
use rfid_signal::msk::MskConfig;
use rfid_signal::{anc, cascade};
use rfid_sim::{noise_stream_seed, CounterRng};
use rfid_types::{TagId, TAG_ID_BITS};
use std::collections::HashMap;

/// A newly resolved ID together with the slot index of the record it came
/// from (FCAT acknowledges resolved tags by this index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The recovered tag ID.
    pub tag: TagId,
    /// Slot index of the collision record that yielded it.
    pub slot: u64,
}

/// How many participants a record stores inline. Usable records have
/// `k ≤ λ ≤ 4`; at the protocols' operating point `k ~ Poisson(√2)`, so
/// eight inline slots leave only the ~1e-5 tail of (never-resolvable)
/// over-λ records to spill.
const INLINE_PARTICIPANTS: usize = 8;

/// How many record indices a tag's reverse index stores inline. Unusable
/// records are indexed too (their exhaustion must be observed), so a tag
/// that stays unknown through the early high-collision phase can sit in
/// well over λ records; eight inline slots keep the spill rate measured
/// over a whole inventory under ~1 % of tags.
const INLINE_RECORDS_PER_TAG: usize = 8;

#[derive(Debug)]
struct Record {
    slot: u64,
    /// Distinct participants as dense tag indices, in first-seen order.
    participants: InlineVec<INLINE_PARTICIPANTS>,
    /// Slot-level: `k ≤ λ` and not spoiled. Signal-level: not corrupted.
    usable: bool,
    /// Where the record's mixed signal lives (if anywhere).
    signal: Wave,
    consumed: bool,
}

/// Storage handle for a record's mixed waveform.
///
/// Synthesized waveforms all share one whole-ID span, so they live as
/// spans in the backend's [`WaveArena`] — one contiguous buffer instead of
/// a `Vec` per record, which keeps the peeling kernels walking dense
/// memory and makes deposit/consume a free-list push/pop. Waveforms
/// recorded off the simulated air arrive from the caller as owned vectors
/// and stay owned.
#[derive(Debug)]
enum Wave {
    /// No waveform (ideal resolution, spoiled or over-λ records).
    None,
    /// Span index into the synthesized-waveform arena.
    Arena(u32),
    /// Caller-provided recording (signal-level fidelity).
    Owned(Vec<Complex>),
}

/// Fixed-span slab of synthesized waveforms: one contiguous sample buffer
/// plus a free list of span indices. Every synthesized record's waveform
/// is a whole-ID reception, so spans never vary and recycling a span is a
/// single free-list push — no per-record allocation, no fragmentation.
#[derive(Debug)]
struct WaveArena {
    span: usize,
    buf: Vec<Complex>,
    free: Vec<u32>,
}

impl WaveArena {
    fn new(span: usize) -> Self {
        WaveArena {
            span,
            buf: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Claims a span (recycled if possible), returning its index.
    fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        let slot = u32::try_from(self.buf.len() / self.span).expect("arena span count overflow");
        self.buf.resize(self.buf.len() + self.span, Complex::ZERO);
        slot
    }

    /// Returns a span to the free list for reuse.
    fn release(&mut self, slot: u32) {
        debug_assert!(!self.free.contains(&slot), "double release of arena span");
        self.free.push(slot);
    }

    fn wave(&self, slot: u32) -> &[Complex] {
        let start = slot as usize * self.span;
        &self.buf[start..start + self.span]
    }

    fn wave_mut(&mut self, slot: u32) -> &mut [Complex] {
        let start = slot as usize * self.span;
        &mut self.buf[start..start + self.span]
    }
}

/// Aggregate statistics over a store's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecordStats {
    /// Records created.
    pub created: u64,
    /// Records resolved into an ID.
    pub resolved: u64,
    /// Records that became fully known without yielding a new ID
    /// (every participant was learned elsewhere first).
    pub exhausted: u64,
    /// Signal-level resolution attempts that failed CRC (noise defeats).
    pub failed_attempts: u64,
    /// Cascade failures rescued by [`RecoveryPolicy::SalvagePartial`]'s
    /// direct depth-1 re-subtraction.
    pub salvaged: u64,
}

/// One signal-backed resolution attempt, logged for the observability
/// layer (the engine drains this into [`rfid_obs`] record events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ResolutionAttemptLog {
    /// Slot index of the record attempted.
    pub record_slot: u64,
    /// Cascade depth of the attempt (1 = resolved from fresh knowledge).
    pub hop: u32,
    /// Residual SNR the subtraction left behind, in dB.
    pub residual_snr_db: f64,
    /// Whether the attempt recovered the record's remaining ID.
    pub success: bool,
}

/// A resolution failure the [`RecoveryPolicy::Requery`] policy turns into
/// a dedicated re-query slot (drained by the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FailedResolution {
    /// Slot index of the spent record.
    pub record_slot: u64,
    /// Dense index of the record's one unknown participant.
    pub unknown: u32,
}

/// How resolutions are decided: the store-internal realization of
/// [`crate::ResolutionModel`] and [`crate::Fidelity`].
#[derive(Debug)]
enum Backend {
    /// Slot-level λ gate with ideal recovery (the paper's §VI model).
    Ideal,
    /// Signal-level fidelity: records carry waveforms recorded off the
    /// simulated air; resolution runs the real ANC chain on them.
    Recorded(MskConfig),
    /// Slot-level protocol with signal-backed resolution: usable records
    /// get *clean* waveforms synthesized at deposit time, every noise term
    /// comes from the record's own counter-based stream at attempt time,
    /// and every resolution runs the real ANC chain with per-hop residual
    /// accumulation.
    Synthesized(Box<SignalBackend>),
}

/// Reserved `hop` tags for [`noise_stream_seed`] derivation. Cascade
/// attempts use their natural hop index (1.., drawing degradation noise
/// only at hop ≥ 2); the reserved values below keep the remaining draw
/// sites on disjoint streams of the same `(seed, record, hop)` family.
/// Receiver AWGN of the stored "recording", generated at attempt time.
const STREAM_RECORDING_NOISE: u32 = 0;
/// Per-tag channel gains/phases drawn at deposit-time synthesis.
const STREAM_CHANNEL_PARAMS: u32 = u32::MAX - 1;
/// Re-query singleton retransmissions (`record` = re-query counter).
const STREAM_REQUERY: u32 = u32::MAX;

/// State of the [`Backend::Synthesized`] resolution path.
#[derive(Debug)]
struct SignalBackend {
    cfg: SignalResolutionConfig,
    policy: RecoveryPolicy,
    /// Master seed of the per-record noise-stream family: channel draws,
    /// recording AWGN, cascade degradations and re-queries each derive a
    /// counter stream from `(noise_seed, record, hop)`. Kept separate from
    /// the protocol RNG so the contention trajectory is identical to the
    /// ideal model's, and order-independent so workers can generate noise
    /// inside the parallel evaluation phase.
    noise_seed: u64,
    /// Re-query slots executed so far — keys their dedicated streams.
    requeries: u64,
    /// `cfg.channel` with noise zeroed: deposits synthesize the clean
    /// mixture (gains applied, no AWGN); the recording noise is generated
    /// at attempt time on [`STREAM_RECORDING_NOISE`].
    clean_channel: ChannelModel,
    scratch: anc::MixScratch,
    /// Scratch: participant IDs for synthesis / known IDs for subtraction.
    ids: Vec<TagId>,
    /// Scratch: re-query singleton waveform.
    wave: Vec<Complex>,
    /// Scratch: recording-noise copy for the unbatched resolve path.
    noised: Vec<Complex>,
    /// Contiguous storage for every live synthesized waveform (clean).
    arena: WaveArena,
    /// Reference waveforms shared by deposit-time synthesis and every
    /// subtraction — one modulation per distinct ID per cache generation.
    ref_cache: ReferenceCache,
    /// Working memory for the sequential (deposit-time) resolve path.
    rscratch: ResolveScratch,
    /// Same-frontier records staged for one batched peeling pass.
    batch: BatchState,
}

/// Upper bound on pooled waveform buffers; beyond this, freed buffers are
/// dropped (bounds memory if records are consumed much faster than
/// deposited).
const WAVE_POOL_MAX: usize = 64;

/// Most records one batched peeling pass evaluates at once. Bounds the
/// batch's reference working set (`MAX_BATCH · λ` distinct IDs must fit
/// the reference cache after one clear) and the retained degraded-copy
/// scratch. Flushing early never changes results — batch members are
/// participant-disjoint, so any split of a batch peels identically.
const MAX_BATCH: usize = 32;

/// Records of one cascade frontier staged for a batched peeling pass,
/// plus the reusable per-entry and per-worker scratch. Entries between
/// `live` and `entries.len()` are spent but keep their buffer capacity.
#[derive(Debug, Default)]
struct BatchState {
    entries: Vec<BatchEntry>,
    live: usize,
    /// Dense participant indices of every staged record — the conflict
    /// predicate that keeps batch members disjoint.
    participants: Vec<u32>,
    /// One resolve scratch per worker, reused across flushes.
    scratch: Vec<ResolveScratch>,
}

/// One record staged for batched peeling: its classification snapshot
/// (taken against the shared frontier), the reusable noise buffers the
/// evaluation phase fills from the record's own streams, and the outcome
/// slots it writes back.
#[derive(Debug, Default)]
struct BatchEntry {
    rec: usize,
    slot: u64,
    hop: u32,
    /// Dense index of the one unknown participant.
    last: u32,
    last_tag: Option<TagId>,
    /// Accumulated-residual noise std for this hop.
    extra: f64,
    /// Known participants, snapshotted at staging time.
    knowns: Vec<TagId>,
    /// Clean mixture + recording AWGN, generated worker-side on
    /// [`STREAM_RECORDING_NOISE`] (arena records in a noisy channel only).
    noised: Vec<Complex>,
    /// Recording + degradation noise, generated worker-side on the hop's
    /// stream (filled only when `extra > 0`). Both buffers depend solely
    /// on `(noise_seed, rec, hop)`, never on evaluation order.
    degraded: Vec<Complex>,
    /// Ghost-guarded primary outcome and its residual SNR.
    primary: Option<(Option<TagId>, f64)>,
    /// Ghost-guarded salvage-retry outcome, when one ran.
    retry: Option<(Option<TagId>, f64)>,
}

/// Evaluates one staged record — the whole noise/mix/subtract/demodulate/
/// CRC pipeline of a batched peeling pass. Reads shared state only through
/// `&` (records, arena, reference cache) and draws noise exclusively from
/// the record's own counter streams, so disjoint entries may run on
/// separate workers in any order; outcomes land in the entry's slots and
/// are applied later in record order.
#[allow(clippy::too_many_arguments)] // flat captures keep the worker closure trivially Send
fn eval_batch_entry(
    e: &mut BatchEntry,
    records: &[Record],
    arena: &WaveArena,
    cache: &ReferenceCache,
    msk: &MskConfig,
    noise_floor_std: f64,
    noise_seed: u64,
    policy: &RecoveryPolicy,
    scratch: &mut ResolveScratch,
) {
    let last_tag = e.last_tag.expect("staged entry carries its unknown tag");
    let stored: &[Complex] = match &records[e.rec].signal {
        Wave::Arena(s) => arena.wave(*s),
        Wave::Owned(v) => v,
        Wave::None => unreachable!("staged entries always carry a waveform"),
    };
    // Arena mixtures are stored clean; realize the receiver noise of the
    // "recording" here, on the record's dedicated stream. Caller-provided
    // recordings already carry their air noise.
    let original: &[Complex] =
        if matches!(records[e.rec].signal, Wave::Arena(_)) && noise_floor_std > 0.0 {
            let mut rng = CounterRng::new(noise_stream_seed(
                noise_seed,
                e.rec as u64,
                STREAM_RECORDING_NOISE,
            ));
            cascade::degrade_into(stored, noise_floor_std, &mut rng, &mut e.noised);
            &e.noised
        } else {
            stored
        };
    let samples: &[Complex] = if e.extra > 0.0 {
        let mut rng = CounterRng::new(noise_stream_seed(noise_seed, e.rec as u64, e.hop));
        cascade::degrade_into(original, e.extra, &mut rng, &mut e.degraded);
        &e.degraded
    } else {
        original
    };
    let attempt = cascade::resolve_prepared(
        samples,
        &e.knowns,
        msk,
        noise_floor_std,
        e.extra,
        cache,
        scratch,
    );
    // Ghost guard: never credit a CRC-colliding ID nobody owns.
    let ok = attempt.recovered.ok().filter(|id| *id == last_tag);
    let failed = ok.is_none();
    e.primary = Some((ok, attempt.residual_snr_db));
    if failed && e.hop > 1 && matches!(policy, RecoveryPolicy::SalvagePartial) {
        // Salvage the partial cascade: depth-1 retry against the stored
        // record without the chain's accumulated residual. RNG-free, so
        // it runs on the worker too.
        let retry = cascade::resolve_prepared(
            original,
            &e.knowns,
            msk,
            noise_floor_std,
            0.0,
            cache,
            scratch,
        );
        let rok = retry.recovered.ok().filter(|id| *id == last_tag);
        e.retry = Some((rok, retry.residual_snr_db));
    }
}

/// The reader's set of outstanding collision records plus its set of known
/// IDs, with cascade resolution.
///
/// # Example
///
/// ```
/// use rfid_anc::CollisionRecordStore;
/// use rfid_types::TagId;
///
/// let mut store = CollisionRecordStore::slot_level(2);
/// let (a, b) = (TagId::from_payload(1), TagId::from_payload(2));
/// store.add_record(5, vec![a, b], true, None);
/// // Learning `a` (say, from a later singleton) resolves the record to `b`.
/// let resolved = store.learn(a);
/// assert_eq!(resolved.len(), 1);
/// assert_eq!(resolved[0].tag, b);
/// assert_eq!(resolved[0].slot, 5);
/// ```
/// Tags are *interned* into dense `u32` indices (by the engine at
/// construction, or lazily by the `TagId` entry points): every per-tag
/// lookup on the hot path — known?, reverse index, hash state — is then an
/// array access instead of a SipHash probe. The `TagId`-keyed map survives
/// only for interning and the public `TagId` API.
#[derive(Debug)]
pub struct CollisionRecordStore {
    records: Vec<Record>,
    /// Dense index → tag ID.
    tags: Vec<TagId>,
    /// Tag ID → dense index; touched only when interning new tags.
    index_of: HashMap<TagId, u32>,
    /// Dense index → outstanding records the tag participates in. Lists of
    /// known tags are dropped: they can never be consulted again.
    by_tag: Vec<InlineVec<INLINE_RECORDS_PER_TAG>>,
    /// Dense index → has the reader learned this tag?
    known: Vec<bool>,
    known_count: usize,
    lambda: u32,
    /// How resolutions are decided (ideal λ gate, recorded waveforms, or
    /// deposit-time synthesis).
    backend: Backend,
    /// Records not yet consumed, maintained incrementally so
    /// [`Self::outstanding`] is O(1) (the observability layer reads it
    /// every slot).
    outstanding: usize,
    stats: RecordStats,
    /// Reusable cascade worklist of `(tag index, resolution depth)` pairs
    /// (kept empty between calls). Depth rides along so signal-backed
    /// attempts know how much residual error has accumulated.
    worklist: Vec<(u32, u32)>,
    /// Signal-backed attempts since the engine last drained them; filled
    /// only when [`Self::set_attempt_logging`] enabled it.
    attempt_log: Vec<ResolutionAttemptLog>,
    log_attempts: bool,
    /// Failures awaiting a re-query slot; filled only under
    /// [`RecoveryPolicy::Requery`].
    failed_log: Vec<FailedResolution>,
    /// Owned waveform buffers reclaimed from consumed records, reused by
    /// the engine's signal-level recording path ([`Self::pooled_wave_buffer`]).
    pool: Vec<Vec<Complex>>,
    /// Expected whole-ID waveform span; pooled buffers are shrunk to at
    /// most twice this on return so the pool bounds bytes, not just
    /// buffer count. Zero disables pooling (ideal backend).
    pool_span: usize,
    /// Worker count for batched peeling (1 = evaluate inline). Thread
    /// count never changes outcomes: batch members are disjoint, every
    /// noise term is a pure function of `(noise_seed, record, hop)`, and
    /// outcomes apply in record order.
    threads: usize,
}

impl CollisionRecordStore {
    /// Creates a slot-level store: a `k`-collision record is resolvable
    /// iff `k ≤ lambda` (the paper's simulation model).
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2`.
    #[must_use]
    pub fn slot_level(lambda: u32) -> Self {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        CollisionRecordStore::with_backend(lambda, Backend::Ideal)
    }

    /// Creates a signal-level store: resolution runs the real ANC
    /// subtract-and-decode chain on recorded waveforms, so physics decides
    /// resolvability.
    #[must_use]
    pub fn signal_level(msk: MskConfig) -> Self {
        CollisionRecordStore::with_backend(u32::MAX, Backend::Recorded(msk))
    }

    /// Creates a slot-level store whose resolutions are *signal-backed*
    /// ([`crate::ResolutionModel::SignalBacked`]): usable records get clean
    /// waveforms synthesized at deposit time, every noise term is drawn
    /// from a counter stream keyed on `(seed, record, hop)` at attempt
    /// time, and each resolution runs the real ANC subtract-and-decode
    /// chain with per-hop residual accumulation. Failures are handled per
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2`.
    #[must_use]
    pub fn signal_backed(
        lambda: u32,
        cfg: SignalResolutionConfig,
        policy: RecoveryPolicy,
        seed: u64,
    ) -> Self {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        let span = cfg.msk.samples_for_bits(TAG_ID_BITS as usize);
        CollisionRecordStore::with_backend(
            lambda,
            Backend::Synthesized(Box::new(SignalBackend {
                ref_cache: ReferenceCache::new(&cfg.msk),
                clean_channel: cfg.channel.clone().noiseless(),
                cfg,
                policy,
                noise_seed: seed,
                requeries: 0,
                scratch: anc::MixScratch::default(),
                ids: Vec::new(),
                wave: Vec::new(),
                noised: Vec::new(),
                arena: WaveArena::new(span),
                rscratch: ResolveScratch::default(),
                batch: BatchState::default(),
            })),
        )
    }

    fn with_backend(lambda: u32, backend: Backend) -> Self {
        let pool_span = match &backend {
            Backend::Ideal => 0,
            Backend::Recorded(msk) => msk.samples_for_bits(TAG_ID_BITS as usize),
            Backend::Synthesized(b) => b.arena.span,
        };
        CollisionRecordStore {
            records: Vec::new(),
            tags: Vec::new(),
            index_of: HashMap::new(),
            by_tag: Vec::new(),
            known: Vec::new(),
            known_count: 0,
            lambda,
            backend,
            outstanding: 0,
            stats: RecordStats::default(),
            worklist: Vec::new(),
            attempt_log: Vec::new(),
            log_attempts: false,
            failed_log: Vec::new(),
            pool: Vec::new(),
            pool_span,
            threads: 1,
        }
    }

    /// Sets the worker count for batched peeling. `n` is clamped to at
    /// least 1; results are identical at every value (see the field docs).
    pub(crate) fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Pops a reclaimed waveform buffer (or a fresh one) for the engine's
    /// signal-level recording path: the buffer a consumed record frees
    /// comes back here, so the steady state records without allocating.
    pub(crate) fn pooled_wave_buffer(&mut self) -> Vec<Complex> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a freed owned waveform to the pool, shrinking buffers whose
    /// capacity ballooned past twice the expected span so the pool bounds
    /// bytes as well as count (mixed-length callers can otherwise park
    /// `WAVE_POOL_MAX` arbitrarily large vectors here forever).
    fn return_to_pool(pool: &mut Vec<Vec<Complex>>, span: usize, mut wave: Vec<Complex>) {
        if span == 0 || pool.len() >= WAVE_POOL_MAX {
            return;
        }
        let bound = span * 2;
        if wave.capacity() > bound {
            wave.truncate(bound);
            wave.shrink_to(bound);
        }
        pool.push(wave);
    }

    /// Enables (or disables) per-attempt logging for the observability
    /// layer; the engine drains the log with [`Self::swap_attempt_log`].
    pub(crate) fn set_attempt_logging(&mut self, enabled: bool) {
        self.log_attempts = enabled;
    }

    /// Swaps the accumulated attempt log with `buf` (typically an empty
    /// scratch vector), handing the entries to the caller allocation-free.
    pub(crate) fn swap_attempt_log(&mut self, buf: &mut Vec<ResolutionAttemptLog>) {
        std::mem::swap(&mut self.attempt_log, buf);
    }

    /// Swaps the pending resolution-failure log with `buf`; entries exist
    /// only under [`RecoveryPolicy::Requery`].
    pub(crate) fn swap_failed_log(&mut self, buf: &mut Vec<FailedResolution>) {
        std::mem::swap(&mut self.failed_log, buf);
    }

    /// Whether the tag behind a dense index has been learned.
    pub(crate) fn is_known_dense(&self, idx: u32) -> bool {
        self.known[idx as usize]
    }

    /// Executes a dedicated re-query slot addressed at the tag behind
    /// `idx`: the tag retransmits alone through the channel and the reader
    /// attempts a singleton decode. Ideal and recorded backends always
    /// succeed (re-query slots only arise signal-backed).
    pub(crate) fn requery_singleton(&mut self, idx: u32) -> bool {
        match &mut self.backend {
            Backend::Synthesized(b) => {
                let tag = self.tags[idx as usize];
                b.ids.clear();
                b.ids.push(tag);
                // Each re-query slot gets its own stream, keyed by an
                // incrementing counter on the reserved re-query domain.
                let mut rng =
                    CounterRng::new(noise_stream_seed(b.noise_seed, b.requeries, STREAM_REQUERY));
                b.requeries += 1;
                anc::transmit_mixed_into(
                    &b.ids,
                    &b.cfg.msk,
                    &b.cfg.channel,
                    &mut rng,
                    &mut b.scratch,
                    &mut b.wave,
                );
                anc::decode_singleton(&b.wave, &b.cfg.msk) == Some(tag)
            }
            _ => true,
        }
    }

    /// Pre-sizes the per-tag tables for `n` tags so interning the
    /// population at engine construction does not reallocate.
    pub(crate) fn reserve_tags(&mut self, n: usize) {
        self.tags.reserve(n);
        self.index_of.reserve(n);
        self.by_tag.reserve(n);
        self.known.reserve(n);
    }

    /// Interns `tag`, returning its dense index.
    pub(crate) fn intern(&mut self, tag: TagId) -> u32 {
        if let Some(&idx) = self.index_of.get(&tag) {
            return idx;
        }
        let idx = u32::try_from(self.tags.len()).expect("more than u32::MAX distinct tags");
        self.index_of.insert(tag, idx);
        self.tags.push(tag);
        self.by_tag.push(InlineVec::new());
        self.known.push(false);
        idx
    }

    /// The tag ID behind a dense index.
    pub(crate) fn tag_of(&self, idx: u32) -> TagId {
        self.tags[idx as usize]
    }

    fn mark_known(&mut self, idx: u32) -> bool {
        let slot = &mut self.known[idx as usize];
        if *slot {
            return false;
        }
        *slot = true;
        self.known_count += 1;
        true
    }

    /// Whether the reader already knows `tag`.
    #[must_use]
    pub fn is_known(&self, tag: TagId) -> bool {
        self.index_of
            .get(&tag)
            .is_some_and(|&idx| self.known[idx as usize])
    }

    /// Number of IDs the reader has learned.
    #[must_use]
    pub fn known_count(&self) -> usize {
        self.known_count
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> RecordStats {
        self.stats
    }

    /// Number of records still outstanding (not consumed). O(1).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The resolvability gate [`Self::add_record`] will apply to a record
    /// with `participants` *distinct* participants and the given caller
    /// `usable` flag: signal-level stores accept any multiplicity, slot-
    /// level stores require `k ≤ λ`. Exposed so observers can report the
    /// effective flag without duplicating the rule.
    #[must_use]
    pub fn usable_at_insert(&self, participants: usize, usable: bool) -> bool {
        usable
            && (matches!(self.backend, Backend::Recorded(_)) || participants as u32 <= self.lambda)
    }

    /// The current λ gate (maximum resolvable collision size).
    #[must_use]
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// Changes the λ gate applied to *future* deposits (the adaptive-λ
    /// control loop re-selects λ per frame/round). Records already stored
    /// keep their insert-time usability: the reader committed to keeping
    /// (or discarding) their waveforms when they were deposited.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2`.
    pub fn set_lambda(&mut self, lambda: u32) {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        self.lambda = lambda;
    }

    /// Releases the memory held by consumed records (their participant
    /// lists and recorded signals). Index structures stay valid; useful in
    /// long signal-level runs where each record holds a full waveform.
    pub fn prune_consumed(&mut self) {
        for record in &mut self.records {
            if record.consumed {
                record.participants.clear();
                // Consumed records already released their arena span in
                // `consume_record`; only owned payloads can remain.
                record.signal = Wave::None;
            }
        }
    }

    /// Deposits a new collision record and returns any IDs resolved as an
    /// immediate consequence (participants the reader already knew count
    /// as known right away — pseudocode line 12's membership check runs
    /// against every known ID).
    ///
    /// * `usable` — slot-level: pass `!spoiled` (the λ check happens here);
    ///   signal-level: pass `false` only for receptions ruined beyond use.
    /// * `signal` — the recorded waveform (signal-level only).
    ///
    /// Duplicate participants are collapsed before any bookkeeping: the
    /// unknown-count rule, the λ gate and the per-tag index all operate on
    /// *distinct* IDs, so a caller passing `[a, a]` gets the semantics of
    /// `[a]` instead of a record that can never resolve (each tag
    /// contributes one signal component regardless of how the caller
    /// enumerated it).
    pub fn add_record(
        &mut self,
        slot: u64,
        participants: Vec<TagId>,
        usable: bool,
        signal: Option<Vec<Complex>>,
    ) -> Vec<Resolved> {
        let dense: Vec<u32> = participants.iter().map(|&t| self.intern(t)).collect();
        let mut resolved = Vec::new();
        self.add_record_dense(slot, &dense, usable, signal, &mut resolved);
        resolved.into_iter().map(|(_, r)| r).collect()
    }

    /// Dense-index core of [`Self::add_record`]: participants are dense
    /// indices (duplicates allowed; collapsed here) and resolutions are
    /// *appended* to `resolved` as `(dense_index, Resolved)` pairs, reusing
    /// the caller's buffer. The hot slot loop calls this directly with its
    /// transmitter scratch so a collision slot allocates nothing beyond the
    /// record itself.
    pub(crate) fn add_record_dense(
        &mut self,
        slot: u64,
        participants: &[u32],
        usable: bool,
        signal: Option<Vec<Complex>>,
        resolved: &mut Vec<(u32, Resolved)>,
    ) {
        debug_assert!(!participants.is_empty(), "a record needs participants");
        // Collapse duplicates, keeping first-seen order (k is tiny; the
        // quadratic scan beats hashing and allocates nothing).
        let mut distinct: InlineVec<INLINE_PARTICIPANTS> = InlineVec::new();
        for &t in participants {
            if !distinct.contains(t) {
                distinct.push(t);
            }
        }
        self.stats.created += 1;
        let usable = self.usable_at_insert(distinct.len(), usable);
        let idx = self.records.len();
        let rec = u32::try_from(idx).expect("more than u32::MAX records");
        for &t in distinct.as_slice() {
            // Known tags' lists are never consulted again (a tag is learned
            // at most once, and it is already learned) — skip indexing them.
            if !self.known[t as usize] {
                self.by_tag[t as usize].push(rec);
            }
        }
        // Signal-backed stores synthesize the *clean* mixed waveform the
        // reader "recorded" this slot; channel gains come from the
        // record's own parameter stream, and the receiver AWGN is realized
        // later, at attempt time, inside the (parallel) evaluation phase.
        // Only usable records are synthesized: spoiled or over-λ records
        // can never be attempted, so their waveform would be dead weight.
        // The waveform goes straight into an arena span; each component is
        // its cached reference scaled by the drawn channel gain, so the
        // steady state neither allocates nor re-modulates.
        let signal = match &mut self.backend {
            Backend::Synthesized(b) if usable && signal.is_none() => {
                b.ids.clear();
                for &t in distinct.as_slice() {
                    b.ids.push(self.tags[t as usize]);
                }
                let SignalBackend {
                    cfg,
                    noise_seed,
                    clean_channel,
                    scratch,
                    ids,
                    arena,
                    ref_cache,
                    ..
                } = &mut **b;
                let mut rng = CounterRng::new(noise_stream_seed(
                    *noise_seed,
                    u64::from(rec),
                    STREAM_CHANNEL_PARAMS,
                ));
                let span = arena.alloc();
                anc::transmit_mixed_cached(
                    ids,
                    &cfg.msk,
                    clean_channel,
                    &mut rng,
                    ref_cache,
                    scratch,
                    arena.wave_mut(span),
                );
                Wave::Arena(span)
            }
            _ => match signal {
                Some(wave) => Wave::Owned(wave),
                None => Wave::None,
            },
        };
        self.outstanding += 1;
        self.records.push(Record {
            slot,
            participants: distinct,
            usable,
            signal,
            consumed: false,
        });

        // Participants the reader already knows count as known right away;
        // the record may be immediately resolvable (or already exhausted).
        // The attempt runs at depth 1 (fresh knowledge, no chain).
        if let Some((first_idx, first)) = self.try_resolve(idx, 1) {
            self.mark_known(first_idx);
            resolved.push((first_idx, first));
            self.cascade_from(first_idx, 1, resolved);
        }
    }

    /// Registers that the reader learned `tag` and runs the resolution
    /// cascade. Returns the IDs newly learned *through records* (not
    /// including `tag` itself), in resolution order.
    ///
    /// Calling this for an already-known tag is a no-op.
    pub fn learn(&mut self, tag: TagId) -> Vec<Resolved> {
        let idx = self.intern(tag);
        let mut resolved = Vec::new();
        self.learn_dense(idx, &mut resolved);
        resolved.into_iter().map(|(_, r)| r).collect()
    }

    /// Dense-index core of [`Self::learn`]: resolutions are appended to
    /// `resolved`, reusing the caller's buffer.
    pub(crate) fn learn_dense(&mut self, idx: u32, resolved: &mut Vec<(u32, Resolved)>) {
        if !self.mark_known(idx) {
            return;
        }
        self.cascade_from(idx, 0, resolved);
    }

    /// Revisits the records of every tag on the worklist, resolving any
    /// that now have exactly one unknown participant. Newly resolved tags
    /// enter [`Self::known`] immediately — exactly the `while S ≠ ∅` loop
    /// of the reader pseudocode, where an ID extracted from one record is
    /// fed back to mark and resolve the others.
    ///
    /// `depth` is how many resolution hops produced the knowledge of
    /// `idx`: 0 for a directly decoded singleton, `d` for a tag pulled out
    /// of a record at hop `d`. Records unlocked by a depth-`d` tag are
    /// attempted at hop `d + 1`, which is what lets the signal-backed
    /// backend accumulate per-hop residual error.
    fn cascade_from(&mut self, idx: u32, depth: u32, resolved: &mut Vec<(u32, Resolved)>) {
        debug_assert!(self.known[idx as usize]);
        let batched = matches!(self.backend, Backend::Synthesized(_));
        let mut worklist = std::mem::take(&mut self.worklist);
        debug_assert!(worklist.is_empty());
        worklist.push((idx, depth));
        while let Some((current, d)) = worklist.pop() {
            // `current` was just learned, so this is the one and only time
            // its record list is consulted (nothing is appended to a known
            // tag's list) — take it instead of cloning it.
            let records = std::mem::take(&mut self.by_tag[current as usize]);
            if batched {
                // Signal-backed: stage the whole list against the current
                // known-ID frontier and peel it in (at most a few) batched
                // passes instead of one resolve per record.
                for &rec in records.as_slice() {
                    self.stage_record(rec as usize, d + 1, resolved, &mut worklist);
                }
                // The frontier ends with the list: flush before the next
                // worklist pop changes the known set.
                self.flush_batch(resolved, &mut worklist);
            } else {
                for &rec in records.as_slice() {
                    if let Some((tag_idx, r)) = self.try_resolve(rec as usize, d + 1) {
                        self.mark_known(tag_idx);
                        resolved.push((tag_idx, r));
                        worklist.push((tag_idx, d + 1));
                    }
                }
            }
        }
        self.worklist = worklist;
    }

    /// Whether record `rec` shares a participant with any record already
    /// staged in the batch. Overlapping records must not share a batch:
    /// the earlier one's resolution changes the later one's classification
    /// (its unknown count, or the known set it subtracts with), so the
    /// later record belongs to the *next* frontier.
    fn batch_conflicts(&self, rec: usize) -> bool {
        let Backend::Synthesized(b) = &self.backend else {
            return false;
        };
        if b.batch.live == 0 {
            return false;
        }
        let record = &self.records[rec];
        record
            .participants
            .as_slice()
            .iter()
            .any(|t| b.batch.participants.contains(t))
    }

    /// Classifies record `rec` against the current frontier and either
    /// disposes of it inline (consumed / still blocked / exhausted / ideal
    /// gate) or stages it for the next batched peeling pass. Equivalent,
    /// record for record and RNG draw for RNG draw, to running
    /// [`Self::try_resolve`] sequentially: a flush applies all staged
    /// outcomes whenever a record could observe them.
    fn stage_record(
        &mut self,
        rec: usize,
        hop: u32,
        resolved: &mut Vec<(u32, Resolved)>,
        worklist: &mut Vec<(u32, u32)>,
    ) {
        if self.batch_conflicts(rec) {
            self.flush_batch(resolved, worklist);
        }
        let record = &self.records[rec];
        if record.consumed {
            return;
        }
        let mut last = None;
        for &t in record.participants.as_slice() {
            if !self.known[t as usize] {
                if last.is_some() {
                    // Two or more unknowns: not resolvable yet. No staged
                    // entry can change that — overlaps were flushed above.
                    return;
                }
                last = Some(t);
            }
        }
        let Some(last) = last else {
            // Every participant learned elsewhere; nothing left to extract.
            self.consume_record(rec);
            self.stats.exhausted += 1;
            return;
        };
        if !self.records[rec].usable {
            return;
        }
        if matches!(self.records[rec].signal, Wave::None) {
            // Ideal gate (usable record without a waveform): resolving it
            // mutates the known set, so it cannot join the batch. Flush
            // first so earlier records' outcomes land in order; the flush
            // cannot re-classify this record (no shared participants).
            self.flush_batch(resolved, worklist);
            let slot = self.records[rec].slot;
            let tag = self.tags[last as usize];
            self.consume_record(rec);
            self.stats.resolved += 1;
            self.mark_known(last);
            resolved.push((last, Resolved { tag, slot }));
            worklist.push((last, hop));
            return;
        }
        // Stage: snapshot the classification against the shared frontier.
        // No noise is drawn here — every noise term is generated inside
        // the evaluation phase from the record's own counter streams, so
        // staging order (and worker count) cannot affect realizations.
        let full = {
            let Backend::Synthesized(b) = &mut self.backend else {
                unreachable!("batched staging only runs signal-backed")
            };
            let SignalBackend { cfg, batch, .. } = &mut **b;
            let record = &self.records[rec];
            if batch.live == batch.entries.len() {
                batch.entries.push(BatchEntry::default());
            }
            let entry = &mut batch.entries[batch.live];
            batch.live += 1;
            entry.rec = rec;
            entry.slot = record.slot;
            entry.hop = hop;
            entry.last = last;
            entry.last_tag = Some(self.tags[last as usize]);
            entry.primary = None;
            entry.retry = None;
            entry.knowns.clear();
            for &t in record.participants.as_slice() {
                if self.known[t as usize] {
                    entry.knowns.push(self.tags[t as usize]);
                }
                batch.participants.push(t);
            }
            let base = cfg.channel.noise_std();
            entry.extra = cascade::cascade_noise_std(base, cfg.residual_per_hop, hop);
            batch.live >= MAX_BATCH
        };
        if full {
            self.flush_batch(resolved, worklist);
        }
    }

    /// Peels every staged record in one pass: warm the shared reference
    /// cache, evaluate the (pure, disjoint) entries — inline, or fanned
    /// out over `std::thread::scope` workers when `threads > 1` — then
    /// apply the outcomes strictly in record order. Log entries, stats,
    /// consumption, knowledge and worklist pushes appear exactly as the
    /// sequential path would emit them, so worker count never changes a
    /// single reported bit.
    fn flush_batch(&mut self, resolved: &mut Vec<(u32, Resolved)>, worklist: &mut Vec<(u32, u32)>) {
        let mut batch = match &mut self.backend {
            Backend::Synthesized(b) if b.batch.live > 0 => std::mem::take(&mut b.batch),
            Backend::Synthesized(b) => {
                b.batch.participants.clear();
                return;
            }
            _ => return,
        };
        let live = batch.live;
        // Warm every reference the batch subtracts with. `try_ensure`
        // never evicts; if the cache cannot take the working set, clear
        // once and re-warm — a batch is bounded so it always fits an
        // empty cache.
        {
            let Backend::Synthesized(b) = &mut self.backend else {
                unreachable!()
            };
            let cache = &mut b.ref_cache;
            let mut fits = true;
            for entry in &batch.entries[..live] {
                for &id in &entry.knowns {
                    fits &= cache.try_ensure(id);
                }
            }
            if !fits {
                cache.clear();
                for entry in &batch.entries[..live] {
                    for &id in &entry.knowns {
                        let ok = cache.try_ensure(id);
                        debug_assert!(ok, "batch references must fit an empty cache");
                    }
                }
            }
        }
        // Evaluate: the full noise/subtract/demodulate/CRC pipeline over
        // disjoint records against shared read-only state, noise included
        // (each record's streams are derived from `(noise_seed, rec, hop)`
        // alone). Chunked across scoped workers when asked to.
        {
            let Backend::Synthesized(b) = &self.backend else {
                unreachable!()
            };
            let records = self.records.as_slice();
            let (arena, cache, msk) = (&b.arena, &b.ref_cache, &b.cfg.msk);
            let base = b.cfg.channel.noise_std();
            let noise_seed = b.noise_seed;
            let policy = &b.policy;
            let workers = self.threads.min(live).max(1);
            if batch.scratch.len() < workers {
                batch.scratch.resize_with(workers, ResolveScratch::default);
            }
            let entries = &mut batch.entries[..live];
            if workers == 1 {
                let scratch = &mut batch.scratch[0];
                for entry in entries.iter_mut() {
                    eval_batch_entry(
                        entry, records, arena, cache, msk, base, noise_seed, policy, scratch,
                    );
                }
            } else {
                let chunk = live.div_ceil(workers);
                std::thread::scope(|s| {
                    for (chunk_entries, scratch) in
                        entries.chunks_mut(chunk).zip(batch.scratch.iter_mut())
                    {
                        s.spawn(move || {
                            for entry in chunk_entries.iter_mut() {
                                eval_batch_entry(
                                    entry, records, arena, cache, msk, base, noise_seed, policy,
                                    scratch,
                                );
                            }
                        });
                    }
                });
            }
        }
        // Apply in record order.
        let requery = matches!(
            &self.backend,
            Backend::Synthesized(b) if matches!(b.policy, RecoveryPolicy::Requery { .. })
        );
        for i in 0..live {
            let entry = &mut batch.entries[i];
            let (rec, slot, hop, last) = (entry.rec, entry.slot, entry.hop, entry.last);
            let (primary_ok, primary_snr) = entry.primary.take().expect("evaluated entry");
            let retry = entry.retry.take();
            if self.log_attempts {
                self.attempt_log.push(ResolutionAttemptLog {
                    record_slot: slot,
                    hop,
                    residual_snr_db: primary_snr,
                    success: primary_ok.is_some(),
                });
            }
            let mut ok = primary_ok;
            if let Some((retry_ok, retry_snr)) = retry {
                ok = retry_ok;
                if self.log_attempts {
                    self.attempt_log.push(ResolutionAttemptLog {
                        record_slot: slot,
                        hop: 1,
                        residual_snr_db: retry_snr,
                        success: retry_ok.is_some(),
                    });
                }
                if retry_ok.is_some() {
                    self.stats.salvaged += 1;
                }
            }
            if ok.is_none() && requery {
                self.failed_log.push(FailedResolution {
                    record_slot: slot,
                    unknown: last,
                });
            }
            self.consume_record(rec);
            match ok {
                Some(tag) => {
                    self.stats.resolved += 1;
                    self.mark_known(last);
                    resolved.push((last, Resolved { tag, slot }));
                    worklist.push((last, hop));
                }
                None => {
                    self.stats.failed_attempts += 1;
                }
            }
        }
        batch.live = 0;
        batch.participants.clear();
        let Backend::Synthesized(b) = &mut self.backend else {
            unreachable!()
        };
        b.batch = batch;
    }

    /// Marks record `idx` consumed and frees its payload: an arena span
    /// returns to the free list for the next deposit, an owned buffer to
    /// the pool (bounded in count by [`WAVE_POOL_MAX`] and in bytes by the
    /// shrink in [`Self::return_to_pool`]).
    fn consume_record(&mut self, idx: usize) {
        let record = &mut self.records[idx];
        record.consumed = true;
        record.participants.clear();
        let freed = std::mem::replace(&mut record.signal, Wave::None);
        self.outstanding -= 1;
        match freed {
            Wave::Arena(span) => {
                if let Backend::Synthesized(b) = &mut self.backend {
                    b.arena.release(span);
                }
            }
            Wave::Owned(wave) => Self::return_to_pool(&mut self.pool, self.pool_span, wave),
            Wave::None => {}
        }
    }

    /// Attempts to resolve record `idx` at cascade depth `hop`; returns
    /// the recovered tag (as dense index + [`Resolved`]), if any.
    ///
    /// The reader's `known` set is authoritative: the record resolves when
    /// exactly one participant is unknown. A record whose participants are
    /// all known is consumed as exhausted.
    fn try_resolve(&mut self, idx: usize, hop: u32) -> Option<(u32, Resolved)> {
        let record = &self.records[idx];
        if record.consumed {
            return None;
        }
        let mut last = None;
        for &t in record.participants.as_slice() {
            if !self.known[t as usize] {
                if last.is_some() {
                    // Two or more unknowns: not resolvable yet.
                    return None;
                }
                last = Some(t);
            }
        }
        let Some(last) = last else {
            // Every participant learned elsewhere; nothing left to extract.
            self.consume_record(idx);
            self.stats.exhausted += 1;
            return None;
        };
        if !record.usable {
            return None;
        }
        let slot = record.slot;
        let last_tag = self.tags[last as usize];
        let recovered: Option<TagId> = match &mut self.backend {
            // Slot-level ideal: the λ gate already passed; the last
            // unknown participant is recovered.
            Backend::Ideal => Some(last_tag),
            Backend::Recorded(msk) => {
                let record = &self.records[idx];
                match &record.signal {
                    // Signal-level: subtract the known components, decode,
                    // CRC — and require the decoded word to be the record's
                    // actual remaining participant. A noise-corrupted residual
                    // can demodulate into a different CRC-valid ghost word
                    // (2^-16 per attempt); acknowledging a tag nobody owns
                    // would corrupt the inventory, so ghosts count as failed
                    // attempts (mirrors the engine's singleton-path guard).
                    Wave::Owned(signal) => {
                        let knowns: Vec<TagId> = record
                            .participants
                            .as_slice()
                            .iter()
                            .filter(|&&t| self.known[t as usize])
                            .map(|&t| self.tags[t as usize])
                            .collect();
                        anc::resolve(signal, &knowns, msk)
                            .ok()
                            .filter(|id| *id == last_tag)
                    }
                    Wave::None | Wave::Arena(_) => Some(last_tag),
                }
            }
            Backend::Synthesized(b) => {
                let record = &self.records[idx];
                if matches!(record.signal, Wave::None) {
                    // Usable records are always synthesized at deposit;
                    // treat a missing waveform as the ideal gate.
                    Some(last_tag)
                } else {
                    let SignalBackend {
                        cfg,
                        policy,
                        noise_seed,
                        ids,
                        noised,
                        arena,
                        ref_cache,
                        rscratch,
                        ..
                    } = &mut **b;
                    ids.clear();
                    for &t in record.participants.as_slice() {
                        if self.known[t as usize] {
                            ids.push(self.tags[t as usize]);
                        }
                    }
                    let stored: &[Complex] = match &record.signal {
                        Wave::Arena(span) => arena.wave(*span),
                        Wave::Owned(wave) => wave,
                        Wave::None => unreachable!(),
                    };
                    let base = cfg.channel.noise_std();
                    // Arena mixtures are stored clean: realize the
                    // recording AWGN from the record's own stream (same
                    // realization the batched path would generate).
                    let signal: &[Complex] =
                        if matches!(record.signal, Wave::Arena(_)) && base > 0.0 {
                            let mut rng = CounterRng::new(noise_stream_seed(
                                *noise_seed,
                                idx as u64,
                                STREAM_RECORDING_NOISE,
                            ));
                            cascade::degrade_into(stored, base, &mut rng, noised);
                            noised
                        } else {
                            stored
                        };
                    let extra = cascade::cascade_noise_std(base, cfg.residual_per_hop, hop);
                    let mut rng = CounterRng::new(noise_stream_seed(*noise_seed, idx as u64, hop));
                    let attempt = cascade::resolve_cascaded_cached(
                        signal, ids, &cfg.msk, base, extra, &mut rng, ref_cache, rscratch,
                    );
                    // Same ghost-ID guard as the recorded backend.
                    let mut ok = attempt.recovered.ok().filter(|id| *id == last_tag);
                    if self.log_attempts {
                        self.attempt_log.push(ResolutionAttemptLog {
                            record_slot: slot,
                            hop,
                            residual_snr_db: attempt.residual_snr_db,
                            success: ok.is_some(),
                        });
                    }
                    if ok.is_none() && hop > 1 && matches!(policy, RecoveryPolicy::SalvagePartial) {
                        // Salvage the partial cascade: redo the
                        // subtraction directly against the stored
                        // record, without the chain's accumulated
                        // residual (a depth-1 retry; draws nothing).
                        let retry = cascade::resolve_cascaded_cached(
                            signal, ids, &cfg.msk, base, 0.0, &mut rng, ref_cache, rscratch,
                        );
                        ok = retry.recovered.ok().filter(|id| *id == last_tag);
                        if self.log_attempts {
                            self.attempt_log.push(ResolutionAttemptLog {
                                record_slot: slot,
                                hop: 1,
                                residual_snr_db: retry.residual_snr_db,
                                success: ok.is_some(),
                            });
                        }
                        if ok.is_some() {
                            self.stats.salvaged += 1;
                        }
                    }
                    if ok.is_none() && matches!(policy, RecoveryPolicy::Requery { .. }) {
                        self.failed_log.push(FailedResolution {
                            record_slot: slot,
                            unknown: last,
                        });
                    }
                    ok
                }
            }
        };
        // A consumed record can never resolve again; free its payload now
        // (signal-level records hold a full waveform each).
        self.consume_record(idx);
        match recovered {
            Some(tag) => {
                self.stats.resolved += 1;
                Some((last, Resolved { tag, slot }))
            }
            None => {
                // Noise defeated the subtraction; the record is spent
                // (no further knowledge can arrive for it).
                self.stats.failed_attempts += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_signal::{transmit_mixed, ChannelModel};
    use rfid_sim::seeded_rng;

    fn tag(n: u128) -> TagId {
        TagId::from_payload(n)
    }

    #[test]
    fn two_collision_resolves_after_singleton() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        assert_eq!(store.outstanding(), 1);
        let resolved = store.learn(tag(1));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 1
            }]
        );
        assert_eq!(store.outstanding(), 0);
        assert!(store.is_known(tag(2)));
        assert_eq!(store.stats().resolved, 1);
    }

    #[test]
    fn over_lambda_record_never_resolves() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2), tag(3)], true, None);
        assert!(store.learn(tag(1)).is_empty());
        assert!(store.learn(tag(2)).is_empty());
        // Even knowing 2 of 3, a 3-collision is beyond λ = 2.
        assert_eq!(store.stats().resolved, 0);
    }

    #[test]
    fn lambda_three_resolves_triple() {
        let mut store = CollisionRecordStore::slot_level(3);
        store.add_record(1, vec![tag(1), tag(2), tag(3)], true, None);
        assert!(store.learn(tag(1)).is_empty());
        let resolved = store.learn(tag(2));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(3),
                slot: 1
            }]
        );
    }

    #[test]
    fn unusable_record_never_resolves() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], false, None);
        assert!(store.learn(tag(1)).is_empty());
        assert_eq!(store.stats().resolved, 0);
    }

    #[test]
    fn cascade_through_chain() {
        // Fig. 1(b)'s mechanism, chained: learning t1 resolves (t1,t2);
        // knowing t2 resolves (t2,t3); knowing t3 resolves (t3,t4).
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(2), tag(3)], true, None);
        store.add_record(3, vec![tag(3), tag(4)], true, None);
        let resolved = store.learn(tag(1));
        let tags: Vec<TagId> = resolved.iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![tag(2), tag(3), tag(4)]);
    }

    #[test]
    fn add_record_with_known_participant_resolves_immediately() {
        let mut store = CollisionRecordStore::slot_level(2);
        assert!(store.learn(tag(1)).is_empty());
        let resolved = store.add_record(9, vec![tag(1), tag(2)], true, None);
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 9
            }]
        );
    }

    #[test]
    fn fully_known_record_is_exhausted() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.learn(tag(1));
        store.learn(tag(2));
        let resolved = store.add_record(9, vec![tag(1), tag(2)], true, None);
        assert!(resolved.is_empty());
        assert_eq!(store.stats().exhausted, 1);
        assert_eq!(store.outstanding(), 0);
    }

    #[test]
    fn learning_known_tag_is_noop() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.learn(tag(1));
        assert!(store.learn(tag(1)).is_empty());
        assert_eq!(store.known_count(), 2);
    }

    #[test]
    fn tag_in_multiple_records() {
        // One singleton unlocks two records at once.
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(1), tag(3)], true, None);
        let resolved = store.learn(tag(1));
        let mut tags: Vec<TagId> = resolved.iter().map(|r| r.tag).collect();
        tags.sort();
        assert_eq!(tags, vec![tag(2), tag(3)]);
    }

    #[test]
    fn prune_consumed_keeps_semantics() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(3), tag(4)], true, None);
        store.learn(tag(1)); // resolves record 1
        store.prune_consumed();
        assert_eq!(store.outstanding(), 1);
        // The surviving record still resolves normally.
        let resolved = store.learn(tag(3));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(4),
                slot: 2
            }]
        );
    }

    #[test]
    fn signal_level_resolution_works() {
        let msk = MskConfig::default();
        let model = ChannelModel::default().with_noise_std(0.005);
        let mut rng = seeded_rng(3);
        let (a, b) = (tag(77), tag(88));
        let mixed = transmit_mixed(&[a, b], &msk, &model, &mut rng);
        let mut store = CollisionRecordStore::signal_level(msk);
        store.add_record(4, vec![a, b], true, Some(mixed));
        let resolved = store.learn(a);
        assert_eq!(resolved, vec![Resolved { tag: b, slot: 4 }]);
    }

    #[test]
    fn signal_level_noise_failure_counts_attempt() {
        let msk = MskConfig::default();
        let model = ChannelModel::default().with_noise_std(0.8); // ~0 dB
        let mut rng = seeded_rng(5);
        let (a, b) = (tag(7), tag(8));
        let mixed = transmit_mixed(&[a, b], &msk, &model, &mut rng);
        let mut store = CollisionRecordStore::signal_level(msk);
        store.add_record(4, vec![a, b], true, Some(mixed));
        let resolved = store.learn(a);
        assert!(resolved.is_empty());
        assert_eq!(store.stats().failed_attempts, 1);
    }

    #[test]
    #[should_panic(expected = "lambda must be >= 2")]
    fn lambda_one_panics() {
        let _ = CollisionRecordStore::slot_level(1);
    }

    #[test]
    fn duplicate_participants_collapse_to_distinct() {
        // `[a, a, b]` is two distinct signal components: it must pass the
        // λ = 2 gate and resolve once `a` is known (before the dedup fix
        // the repeated unknown made the record permanently unresolvable).
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(1), tag(2)], true, None);
        assert_eq!(store.outstanding(), 1);
        let resolved = store.learn(tag(1));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 1
            }]
        );
    }

    #[test]
    fn fully_duplicated_participant_acts_as_singleton_record() {
        let mut store = CollisionRecordStore::slot_level(2);
        let resolved = store.add_record(3, vec![tag(5), tag(5)], true, None);
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(5),
                slot: 3
            }]
        );
        assert_eq!(store.outstanding(), 0);
        assert!(store.is_known(tag(5)));
    }

    #[test]
    fn outstanding_counter_tracks_consumption() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(3), tag(4)], true, None);
        store.add_record(3, vec![tag(5), tag(6), tag(7)], true, None); // over λ
        assert_eq!(store.outstanding(), 3);
        store.learn(tag(1)); // resolves the (1,2) record
        assert_eq!(store.outstanding(), 2);
        store.learn(tag(3)); // resolves the (3,4) record
        assert_eq!(store.outstanding(), 1);
        // The over-λ record stays outstanding even when fully known except one.
        store.learn(tag(5));
        assert_eq!(store.outstanding(), 1);
        // Fully known → exhausted on the next touch.
        store.learn(tag(6));
        store.learn(tag(7));
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.stats().exhausted, 1);
    }

    #[test]
    fn pool_is_bounded_in_count_and_bytes_across_mixed_length_records() {
        // Regression: returned buffers used to keep whatever capacity they
        // arrived with — WAVE_POOL_MAX bounded the pool's *count* while a
        // caller recording oversized mixtures could park unbounded *bytes*
        // in it. Returns now shrink to at most twice the whole-ID span.
        let msk = MskConfig::default();
        let span = msk.samples_for_bits(TAG_ID_BITS as usize);
        let mut store = CollisionRecordStore::signal_level(msk);
        for i in 0..200u64 {
            let a = tag(1_000 + u128::from(i) * 2);
            let b = tag(1_001 + u128::from(i) * 2);
            // Mixed-length recordings, some far larger than a whole-ID
            // span; none demodulates, so every record is consumed as a
            // failed attempt and its buffer offered back to the pool.
            let len = if i % 2 == 0 { 16 } else { span * 8 };
            store.add_record(i, vec![a, b], true, Some(vec![Complex::ZERO; len]));
            store.learn(a);
            store.learn(b);
        }
        assert!(store.pool.len() <= WAVE_POOL_MAX, "pool count unbounded");
        let bound = span * 2;
        for buf in &store.pool {
            assert!(
                buf.capacity() <= bound,
                "pooled buffer holds {} samples of capacity, bound is {bound}",
                buf.capacity()
            );
        }
    }

    #[test]
    fn usable_at_insert_matches_gate() {
        let slot = CollisionRecordStore::slot_level(2);
        assert!(slot.usable_at_insert(2, true));
        assert!(!slot.usable_at_insert(3, true));
        assert!(!slot.usable_at_insert(2, false));
        let sig = CollisionRecordStore::signal_level(MskConfig::default());
        assert!(sig.usable_at_insert(7, true));
        assert!(!sig.usable_at_insert(7, false));
    }

    #[test]
    fn arena_spans_recycled_under_store_churn() {
        // Deposit-and-resolve churn on a signal-backed store: each record
        // frees its span on consumption and the next deposit reuses it, so
        // the slab never grows past the peak number of live records (here
        // exactly one span) no matter how many records pass through.
        let cfg = SignalResolutionConfig::default();
        let span = cfg.msk.samples_for_bits(TAG_ID_BITS as usize);
        let mut store = CollisionRecordStore::signal_backed(2, cfg, RecoveryPolicy::DropRecord, 11);
        for i in 0..100u64 {
            let a = tag(10_000 + u128::from(i) * 2);
            let b = tag(10_001 + u128::from(i) * 2);
            store.add_record(i, vec![a, b], true, None);
            store.learn(a);
            let Backend::Synthesized(b) = &store.backend else {
                unreachable!()
            };
            assert_eq!(
                b.arena.buf.len(),
                span,
                "slab grew past one span after {i} churn cycles"
            );
        }
    }

    mod arena_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Free-list invariants over arbitrary alloc/release sequences:
            /// the slab holds exactly `live + free` spans, never more than
            /// the peak live count, and a release is recycled by the very
            /// next alloc before the slab grows.
            #[test]
            fn prop_arena_free_list_recycles(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
                let span = 8;
                let mut arena = WaveArena::new(span);
                let mut live: Vec<u32> = Vec::new();
                let mut peak = 0usize;
                for alloc in ops {
                    if alloc || live.is_empty() {
                        let recycled = arena.free.last().copied();
                        let before = arena.buf.len();
                        let slot = arena.alloc();
                        if let Some(expect) = recycled {
                            prop_assert_eq!(slot, expect, "free span not recycled");
                            prop_assert_eq!(arena.buf.len(), before, "slab grew despite free span");
                        }
                        prop_assert!(!live.contains(&slot), "allocated a live span");
                        live.push(slot);
                    } else {
                        arena.release(live.pop().expect("nonempty"));
                    }
                    peak = peak.max(live.len());
                    prop_assert_eq!(
                        arena.buf.len(),
                        span * (live.len() + arena.free.len()),
                        "slab size != live + free spans"
                    );
                    prop_assert!(arena.buf.len() <= span * peak, "slab exceeded peak live count");
                }
            }

            /// The recording pool honors both its bounds under arbitrary
            /// deposit/consume sequences of mixed-length recordings: at
            /// most `WAVE_POOL_MAX` buffers, each capped at twice the
            /// whole-ID span.
            #[test]
            fn prop_recording_pool_stays_byte_bounded(
                lens in proptest::collection::vec(0usize..4, 1..60),
            ) {
                let msk = MskConfig::default();
                let span = msk.samples_for_bits(TAG_ID_BITS as usize);
                let mut store = CollisionRecordStore::signal_level(msk);
                for (i, &choice) in lens.iter().enumerate() {
                    let i = i as u64;
                    let a = tag(50_000 + u128::from(i) * 2);
                    let b = tag(50_001 + u128::from(i) * 2);
                    // Length classes: tiny, whole-ID, double, and 8x span.
                    let len = [16, span, span * 2, span * 8][choice];
                    store.add_record(i, vec![a, b], true, Some(vec![Complex::ZERO; len]));
                    // Consuming the record (zero waveforms never decode, so
                    // the attempt fails) offers its buffer back to the pool.
                    store.learn(a);
                    store.learn(b);
                    prop_assert!(store.pool.len() <= WAVE_POOL_MAX, "pool count unbounded");
                    let bound = span * 2;
                    for buf in &store.pool {
                        prop_assert!(
                            buf.capacity() <= bound,
                            "pooled capacity {} exceeds byte bound {bound}",
                            buf.capacity()
                        );
                    }
                }
            }
        }
    }
}
