//! Collision-record bookkeeping and cascading resolution (§IV-B and the
//! reader pseudocode of §IV-D).
//!
//! Every collision slot deposits a *collision record* — the slot index and
//! (conceptually) the recorded mixed signal. Whenever the reader learns a
//! new ID — from a singleton slot or from resolving another record — it
//! checks every outstanding record that ID participated in; a record whose
//! unknown-participant count drops to one yields the last ID by signal
//! subtraction, and that ID is fed back into the cascade (the `while S ≠ ∅`
//! worklist of the pseudocode).

use rfid_signal::complex::Complex;
use rfid_signal::{anc, MskConfig};
use rfid_types::TagId;
use std::collections::{HashMap, HashSet};

/// A newly resolved ID together with the slot index of the record it came
/// from (FCAT acknowledges resolved tags by this index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The recovered tag ID.
    pub tag: TagId,
    /// Slot index of the collision record that yielded it.
    pub slot: u64,
}

#[derive(Debug)]
struct Record {
    slot: u64,
    participants: Vec<TagId>,
    /// Slot-level: `k ≤ λ` and not spoiled. Signal-level: not corrupted.
    usable: bool,
    /// Recorded mixed signal (signal-level fidelity only).
    signal: Option<Vec<Complex>>,
    consumed: bool,
}

/// Aggregate statistics over a store's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecordStats {
    /// Records created.
    pub created: u64,
    /// Records resolved into an ID.
    pub resolved: u64,
    /// Records that became fully known without yielding a new ID
    /// (every participant was learned elsewhere first).
    pub exhausted: u64,
    /// Signal-level resolution attempts that failed CRC (noise defeats).
    pub failed_attempts: u64,
}

/// The reader's set of outstanding collision records plus its set of known
/// IDs, with cascade resolution.
///
/// # Example
///
/// ```
/// use rfid_anc::CollisionRecordStore;
/// use rfid_types::TagId;
///
/// let mut store = CollisionRecordStore::slot_level(2);
/// let (a, b) = (TagId::from_payload(1), TagId::from_payload(2));
/// store.add_record(5, vec![a, b], true, None);
/// // Learning `a` (say, from a later singleton) resolves the record to `b`.
/// let resolved = store.learn(a);
/// assert_eq!(resolved.len(), 1);
/// assert_eq!(resolved[0].tag, b);
/// assert_eq!(resolved[0].slot, 5);
/// ```
#[derive(Debug)]
pub struct CollisionRecordStore {
    records: Vec<Record>,
    by_tag: HashMap<TagId, Vec<usize>>,
    known: HashSet<TagId>,
    lambda: u32,
    /// MSK configuration for signal-level resolution; `None` = slot level.
    msk: Option<MskConfig>,
    /// Records not yet consumed, maintained incrementally so
    /// [`Self::outstanding`] is O(1) (the observability layer reads it
    /// every slot).
    outstanding: usize,
    stats: RecordStats,
}

impl CollisionRecordStore {
    /// Creates a slot-level store: a `k`-collision record is resolvable
    /// iff `k ≤ lambda` (the paper's simulation model).
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2`.
    #[must_use]
    pub fn slot_level(lambda: u32) -> Self {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        CollisionRecordStore {
            records: Vec::new(),
            by_tag: HashMap::new(),
            known: HashSet::new(),
            lambda,
            msk: None,
            outstanding: 0,
            stats: RecordStats::default(),
        }
    }

    /// Creates a signal-level store: resolution runs the real ANC
    /// subtract-and-decode chain on recorded waveforms, so physics decides
    /// resolvability.
    #[must_use]
    pub fn signal_level(msk: MskConfig) -> Self {
        CollisionRecordStore {
            records: Vec::new(),
            by_tag: HashMap::new(),
            known: HashSet::new(),
            lambda: u32::MAX,
            msk: Some(msk),
            outstanding: 0,
            stats: RecordStats::default(),
        }
    }

    /// Whether the reader already knows `tag`.
    #[must_use]
    pub fn is_known(&self, tag: TagId) -> bool {
        self.known.contains(&tag)
    }

    /// Number of IDs the reader has learned.
    #[must_use]
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> RecordStats {
        self.stats
    }

    /// Number of records still outstanding (not consumed). O(1).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The resolvability gate [`Self::add_record`] will apply to a record
    /// with `participants` *distinct* participants and the given caller
    /// `usable` flag: signal-level stores accept any multiplicity, slot-
    /// level stores require `k ≤ λ`. Exposed so observers can report the
    /// effective flag without duplicating the rule.
    #[must_use]
    pub fn usable_at_insert(&self, participants: usize, usable: bool) -> bool {
        usable && (self.msk.is_some() || participants as u32 <= self.lambda)
    }

    /// Releases the memory held by consumed records (their participant
    /// lists and recorded signals). Index structures stay valid; useful in
    /// long signal-level runs where each record holds a full waveform.
    pub fn prune_consumed(&mut self) {
        for record in &mut self.records {
            if record.consumed {
                record.participants = Vec::new();
                record.signal = None;
            }
        }
    }

    /// Deposits a new collision record and returns any IDs resolved as an
    /// immediate consequence (participants the reader already knew count
    /// as known right away — pseudocode line 12's membership check runs
    /// against every known ID).
    ///
    /// * `usable` — slot-level: pass `!spoiled` (the λ check happens here);
    ///   signal-level: pass `false` only for receptions ruined beyond use.
    /// * `signal` — the recorded waveform (signal-level only).
    ///
    /// Duplicate participants are collapsed before any bookkeeping: the
    /// unknown-count rule, the λ gate and the per-tag index all operate on
    /// *distinct* IDs, so a caller passing `[a, a]` gets the semantics of
    /// `[a]` instead of a record that can never resolve (each tag
    /// contributes one signal component regardless of how the caller
    /// enumerated it).
    pub fn add_record(
        &mut self,
        slot: u64,
        mut participants: Vec<TagId>,
        usable: bool,
        signal: Option<Vec<Complex>>,
    ) -> Vec<Resolved> {
        debug_assert!(!participants.is_empty(), "a record needs participants");
        let mut seen = HashSet::with_capacity(participants.len());
        participants.retain(|&t| seen.insert(t));
        self.stats.created += 1;
        let usable = self.usable_at_insert(participants.len(), usable);
        let idx = self.records.len();
        for &tag in &participants {
            self.by_tag.entry(tag).or_default().push(idx);
        }
        self.outstanding += 1;
        self.records.push(Record {
            slot,
            participants,
            usable,
            signal,
            consumed: false,
        });

        // Participants the reader already knows count as known right away;
        // the record may be immediately resolvable (or already exhausted).
        let mut resolved = Vec::new();
        if let Some(first) = self.try_resolve(idx) {
            self.known.insert(first.tag);
            resolved.push(first);
            let mut cascade = self.cascade_from(first.tag);
            resolved.append(&mut cascade);
        }
        resolved
    }

    /// Registers that the reader learned `tag` and runs the resolution
    /// cascade. Returns the IDs newly learned *through records* (not
    /// including `tag` itself), in resolution order.
    ///
    /// Calling this for an already-known tag is a no-op.
    pub fn learn(&mut self, tag: TagId) -> Vec<Resolved> {
        if !self.known.insert(tag) {
            return Vec::new();
        }
        self.cascade_from(tag)
    }

    /// Revisits the records of every tag on the worklist, resolving any
    /// that now have exactly one unknown participant. Newly resolved tags
    /// enter [`Self::known`] immediately — exactly the `while S ≠ ∅` loop
    /// of the reader pseudocode, where an ID extracted from one record is
    /// fed back to mark and resolve the others.
    fn cascade_from(&mut self, tag: TagId) -> Vec<Resolved> {
        debug_assert!(self.known.contains(&tag));
        let mut resolved = Vec::new();
        let mut worklist = vec![tag];
        while let Some(current) = worklist.pop() {
            let indices = self.by_tag.get(&current).cloned().unwrap_or_default();
            for idx in indices {
                if let Some(r) = self.try_resolve(idx) {
                    self.known.insert(r.tag);
                    resolved.push(r);
                    worklist.push(r.tag);
                }
            }
        }
        resolved
    }

    /// Attempts to resolve record `idx`; returns the recovered ID, if any.
    ///
    /// The reader's `known` set is authoritative: the record resolves when
    /// exactly one participant is unknown. A record whose participants are
    /// all known is consumed as exhausted.
    fn try_resolve(&mut self, idx: usize) -> Option<Resolved> {
        let record = &self.records[idx];
        if record.consumed {
            return None;
        }
        let mut unknowns = record
            .participants
            .iter()
            .copied()
            .filter(|t| !self.known.contains(t));
        let first_unknown = unknowns.next();
        let Some(last) = first_unknown else {
            // Every participant learned elsewhere; nothing left to extract.
            self.records[idx].consumed = true;
            self.outstanding -= 1;
            self.stats.exhausted += 1;
            return None;
        };
        if unknowns.next().is_some() {
            // Two or more unknowns: not resolvable yet.
            return None;
        }
        if !record.usable {
            return None;
        }
        let slot = record.slot;
        let recovered: Option<TagId> = match (&self.msk, &record.signal) {
            (Some(msk), Some(signal)) => {
                // Signal-level: subtract the known components, decode,
                // CRC — and require the decoded word to be the record's
                // actual remaining participant. A noise-corrupted residual
                // can demodulate into a different CRC-valid ghost word
                // (2^-16 per attempt); acknowledging a tag nobody owns
                // would corrupt the inventory, so ghosts count as failed
                // attempts (mirrors the engine's singleton-path guard).
                let knowns: Vec<TagId> = record
                    .participants
                    .iter()
                    .copied()
                    .filter(|t| self.known.contains(t))
                    .collect();
                anc::resolve(signal, &knowns, msk)
                    .ok()
                    .filter(|id| *id == last)
            }
            // Slot-level: the λ gate already passed; the last unknown
            // participant is recovered.
            _ => Some(last),
        };
        let record = &mut self.records[idx];
        record.consumed = true;
        self.outstanding -= 1;
        // A consumed record can never resolve again; free its payload now
        // (signal-level records hold a full waveform each).
        record.participants = Vec::new();
        record.signal = None;
        match recovered {
            Some(tag) => {
                self.stats.resolved += 1;
                Some(Resolved { tag, slot })
            }
            None => {
                // Noise defeated the subtraction; the record is spent
                // (no further knowledge can arrive for it).
                self.stats.failed_attempts += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_signal::{transmit_mixed, ChannelModel};
    use rfid_sim::seeded_rng;

    fn tag(n: u128) -> TagId {
        TagId::from_payload(n)
    }

    #[test]
    fn two_collision_resolves_after_singleton() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        assert_eq!(store.outstanding(), 1);
        let resolved = store.learn(tag(1));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 1
            }]
        );
        assert_eq!(store.outstanding(), 0);
        assert!(store.is_known(tag(2)));
        assert_eq!(store.stats().resolved, 1);
    }

    #[test]
    fn over_lambda_record_never_resolves() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2), tag(3)], true, None);
        assert!(store.learn(tag(1)).is_empty());
        assert!(store.learn(tag(2)).is_empty());
        // Even knowing 2 of 3, a 3-collision is beyond λ = 2.
        assert_eq!(store.stats().resolved, 0);
    }

    #[test]
    fn lambda_three_resolves_triple() {
        let mut store = CollisionRecordStore::slot_level(3);
        store.add_record(1, vec![tag(1), tag(2), tag(3)], true, None);
        assert!(store.learn(tag(1)).is_empty());
        let resolved = store.learn(tag(2));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(3),
                slot: 1
            }]
        );
    }

    #[test]
    fn unusable_record_never_resolves() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], false, None);
        assert!(store.learn(tag(1)).is_empty());
        assert_eq!(store.stats().resolved, 0);
    }

    #[test]
    fn cascade_through_chain() {
        // Fig. 1(b)'s mechanism, chained: learning t1 resolves (t1,t2);
        // knowing t2 resolves (t2,t3); knowing t3 resolves (t3,t4).
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(2), tag(3)], true, None);
        store.add_record(3, vec![tag(3), tag(4)], true, None);
        let resolved = store.learn(tag(1));
        let tags: Vec<TagId> = resolved.iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![tag(2), tag(3), tag(4)]);
    }

    #[test]
    fn add_record_with_known_participant_resolves_immediately() {
        let mut store = CollisionRecordStore::slot_level(2);
        assert!(store.learn(tag(1)).is_empty());
        let resolved = store.add_record(9, vec![tag(1), tag(2)], true, None);
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 9
            }]
        );
    }

    #[test]
    fn fully_known_record_is_exhausted() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.learn(tag(1));
        store.learn(tag(2));
        let resolved = store.add_record(9, vec![tag(1), tag(2)], true, None);
        assert!(resolved.is_empty());
        assert_eq!(store.stats().exhausted, 1);
        assert_eq!(store.outstanding(), 0);
    }

    #[test]
    fn learning_known_tag_is_noop() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.learn(tag(1));
        assert!(store.learn(tag(1)).is_empty());
        assert_eq!(store.known_count(), 2);
    }

    #[test]
    fn tag_in_multiple_records() {
        // One singleton unlocks two records at once.
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(1), tag(3)], true, None);
        let resolved = store.learn(tag(1));
        let mut tags: Vec<TagId> = resolved.iter().map(|r| r.tag).collect();
        tags.sort();
        assert_eq!(tags, vec![tag(2), tag(3)]);
    }

    #[test]
    fn prune_consumed_keeps_semantics() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(3), tag(4)], true, None);
        store.learn(tag(1)); // resolves record 1
        store.prune_consumed();
        assert_eq!(store.outstanding(), 1);
        // The surviving record still resolves normally.
        let resolved = store.learn(tag(3));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(4),
                slot: 2
            }]
        );
    }

    #[test]
    fn signal_level_resolution_works() {
        let msk = MskConfig::default();
        let model = ChannelModel::default().with_noise_std(0.005);
        let mut rng = seeded_rng(3);
        let (a, b) = (tag(77), tag(88));
        let mixed = transmit_mixed(&[a, b], &msk, &model, &mut rng);
        let mut store = CollisionRecordStore::signal_level(msk);
        store.add_record(4, vec![a, b], true, Some(mixed));
        let resolved = store.learn(a);
        assert_eq!(resolved, vec![Resolved { tag: b, slot: 4 }]);
    }

    #[test]
    fn signal_level_noise_failure_counts_attempt() {
        let msk = MskConfig::default();
        let model = ChannelModel::default().with_noise_std(0.8); // ~0 dB
        let mut rng = seeded_rng(5);
        let (a, b) = (tag(7), tag(8));
        let mixed = transmit_mixed(&[a, b], &msk, &model, &mut rng);
        let mut store = CollisionRecordStore::signal_level(msk);
        store.add_record(4, vec![a, b], true, Some(mixed));
        let resolved = store.learn(a);
        assert!(resolved.is_empty());
        assert_eq!(store.stats().failed_attempts, 1);
    }

    #[test]
    #[should_panic(expected = "lambda must be >= 2")]
    fn lambda_one_panics() {
        let _ = CollisionRecordStore::slot_level(1);
    }

    #[test]
    fn duplicate_participants_collapse_to_distinct() {
        // `[a, a, b]` is two distinct signal components: it must pass the
        // λ = 2 gate and resolve once `a` is known (before the dedup fix
        // the repeated unknown made the record permanently unresolvable).
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(1), tag(2)], true, None);
        assert_eq!(store.outstanding(), 1);
        let resolved = store.learn(tag(1));
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(2),
                slot: 1
            }]
        );
    }

    #[test]
    fn fully_duplicated_participant_acts_as_singleton_record() {
        let mut store = CollisionRecordStore::slot_level(2);
        let resolved = store.add_record(3, vec![tag(5), tag(5)], true, None);
        assert_eq!(
            resolved,
            vec![Resolved {
                tag: tag(5),
                slot: 3
            }]
        );
        assert_eq!(store.outstanding(), 0);
        assert!(store.is_known(tag(5)));
    }

    #[test]
    fn outstanding_counter_tracks_consumption() {
        let mut store = CollisionRecordStore::slot_level(2);
        store.add_record(1, vec![tag(1), tag(2)], true, None);
        store.add_record(2, vec![tag(3), tag(4)], true, None);
        store.add_record(3, vec![tag(5), tag(6), tag(7)], true, None); // over λ
        assert_eq!(store.outstanding(), 3);
        store.learn(tag(1)); // resolves the (1,2) record
        assert_eq!(store.outstanding(), 2);
        store.learn(tag(3)); // resolves the (3,4) record
        assert_eq!(store.outstanding(), 1);
        // The over-λ record stays outstanding even when fully known except one.
        store.learn(tag(5));
        assert_eq!(store.outstanding(), 1);
        // Fully known → exhausted on the next touch.
        store.learn(tag(6));
        store.learn(tag(7));
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.stats().exhausted, 1);
    }

    #[test]
    fn usable_at_insert_matches_gate() {
        let slot = CollisionRecordStore::slot_level(2);
        assert!(slot.usable_at_insert(2, true));
        assert!(!slot.usable_at_insert(3, true));
        assert!(!slot.usable_at_insert(2, false));
        let sig = CollisionRecordStore::signal_level(MskConfig::default());
        assert!(sig.usable_at_insert(7, true));
        assert!(!sig.usable_at_insert(7, false));
    }
}
