//! **The paper's contribution**: collision-aware RFID tag identification
//! with analog network coding (ANC).
//!
//! Classic anti-collision protocols discard collision slots, which caps
//! their reading throughput at `1/(eT)`. The protocols here *record* each
//! collision slot's mixed signal and, once all but one of its constituent
//! IDs are known, subtract the known signals and recover the last ID —
//! making a `k ≤ λ`-collision slot "almost as useful as a non-collision
//! slot" and lifting the throughput by 51–71 % (paper Table I).
//!
//! Two protocols are provided:
//!
//! * [`Scat`] — the Slotted Collision-Aware Tag identification protocol
//!   (§IV): a per-slot advertisement `⟨i, p_i⟩`, hash-gated transmissions
//!   `H(ID|i) ≤ ⌊p_i·2^l⌋`, and cascading collision-record resolution. It
//!   needs the population size from a pre-step estimator and broadcasts
//!   full IDs to acknowledge resolved tags.
//! * [`Fcat`] — the Framed Collision-Aware Tag identification protocol
//!   (§V): frames amortize the advertisement, resolved records are
//!   acknowledged by 23-bit **slot index** instead of 96-bit ID, and the
//!   remaining-tag count is re-estimated every frame from the collision
//!   count (Eq. 12) — no pre-step needed.
//!
//! Both run at two fidelity levels (see [`Fidelity`]): the paper's
//! slot-level abstraction (a `k`-collision is resolvable iff `k ≤ λ`) and
//! a full signal-level mode that synthesizes MSK waveforms through a fading
//! channel and runs the actual ANC subtract-and-decode chain from
//! [`rfid_signal`].
//!
//! # Example
//!
//! ```
//! use rfid_anc::{Fcat, FcatConfig};
//! use rfid_sim::{run_inventory, SimConfig};
//! use rfid_types::population;
//!
//! let tags = population::uniform(&mut rfid_sim::seeded_rng(7), 2_000);
//! let fcat = Fcat::new(FcatConfig::default()); // λ = 2, ω = √2, f = 30
//! let report = run_inventory(&fcat, &tags, &SimConfig::default())?;
//! assert_eq!(report.identified, 2_000);
//! // A large share of IDs was pulled out of collision slots (Table III).
//! assert!(report.resolved_from_collisions > 600);
//! # Ok::<(), rfid_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[deny(missing_docs)]
mod backend;
mod config;
pub mod device;
mod engine;
mod fcat;
mod inline_vec;
mod lambda;
mod records;
#[deny(missing_docs)]
mod resolution;
mod scat;
mod session;

pub use backend::{
    optimal_load, Anc, BackendModel, CollisionContext, CollisionOutcome, CompressedSensing, Mpr,
    RecoveryBackend,
};
pub use config::{Fidelity, InitialPopulation, Membership, SignalLevelConfig};
pub use fcat::{AckMode, EstimatorInput, Fcat, FcatConfig};
pub use lambda::{LambdaController, MAX_TABULATED_LAMBDA};
pub use records::{CollisionRecordStore, RecordStats};
pub use resolution::{
    RecoveryPolicy, ResolutionModel, SignalResolutionConfig, CALIBRATED_RESIDUAL_PER_HOP,
};
pub use scat::{Scat, ScatConfig};
pub use session::{FcatSession, ScatSession};
