//! SCAT — the Slotted Collision-Aware Tag identification protocol (§IV).
//!
//! Every slot carries its own advertisement `⟨i, p_i⟩`. Tags apply the hash
//! test `H(ID|i) ≤ ⌊p_i·2^l⌋`; the reader records collision slots, resolves
//! them as constituent IDs become known, and broadcasts each resolved **ID
//! in full** in the acknowledgement segment — the two inefficiencies
//! (per-slot advertisements, 96-bit resolution acks) that §V-A motivates
//! FCAT with.
//!
//! The report probability is `p_i = ω*/N_i`, where `ω* = (λ!)^{1/λ}` and
//! `N_i` is the count of not-yet-identified tags, which SCAT derives from
//! an externally supplied population size (oracle or pre-step estimate).

use crate::backend::{BackendModel, RecoveryBackend as _};
use crate::config::{Fidelity, InitialPopulation, Membership};
use crate::engine::{Engine, SlotOutput};
use crate::lambda::LambdaController;
use crate::resolution::{RecoveryPolicy, ResolutionModel};
use rand::rngs::StdRng;
use rfid_analysis::omega::optimal_omega;
use rfid_obs::{EstimatorEvent, EventSink, NoopSink};
use rfid_sim::{AntiCollisionProtocol, InventoryReport, ObservableProtocol, SimConfig, SimError};
use rfid_types::TagId;

/// Configuration of [`Scat`].
#[derive(Debug, Clone)]
pub struct ScatConfig {
    lambda: u32,
    omega: f64,
    initial: InitialPopulation,
    membership: Membership,
    fidelity: Fidelity,
    resolution: ResolutionModel,
    recovery: RecoveryPolicy,
    backend: BackendModel,
    empty_streak: u32,
}

impl ScatConfig {
    /// λ = 2 (today's experimentally demonstrated ANC), ω = √2, oracle
    /// population, sampled membership, slot-level fidelity.
    #[must_use]
    pub fn new() -> Self {
        ScatConfig {
            lambda: 2,
            omega: optimal_omega(2),
            initial: InitialPopulation::Known,
            membership: Membership::Sampled,
            fidelity: Fidelity::SlotLevel,
            resolution: ResolutionModel::Ideal,
            recovery: RecoveryPolicy::DropRecord,
            backend: BackendModel::Anc,
            empty_streak: 5,
        }
    }

    /// Sets λ (how many colliding signals future ANC can disentangle) and
    /// resets ω to the matching optimum `(λ!)^{1/λ}`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2` (like every other builder in the workspace,
    /// misconfiguration is a programmer error, not a recoverable state).
    #[must_use]
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        self.lambda = lambda;
        self.omega = optimal_omega(lambda);
        self
    }

    /// Overrides ω (for sweeps like the paper's Fig. 5 / Table IV).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not strictly positive and finite.
    #[must_use]
    pub fn with_omega(mut self, omega: f64) -> Self {
        assert!(omega.is_finite() && omega > 0.0, "omega must be positive");
        self.omega = omega;
        self
    }

    /// Sets how the initial population size is obtained.
    #[must_use]
    pub fn with_initial(mut self, initial: InitialPopulation) -> Self {
        self.initial = initial;
        self
    }

    /// Sets the membership simulation mode.
    #[must_use]
    pub fn with_membership(mut self, membership: Membership) -> Self {
        self.membership = membership;
        self
    }

    /// Sets the fidelity level.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the collision-record resolution model (only consulted under
    /// [`Fidelity::SlotLevel`]; signal-level fidelity already runs real
    /// waveforms end to end).
    #[must_use]
    pub fn with_resolution(mut self, resolution: ResolutionModel) -> Self {
        self.resolution = resolution;
        self
    }

    /// Sets the recovery policy applied when a signal-backed resolution
    /// attempt fails.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the collision-recovery backend (ANC record cascade by
    /// default; see [`BackendModel`]). A non-ANC backend overrides the
    /// λ-derived ω* with its own optimal offered load `G*` and, like the
    /// resolution model, is only consulted under
    /// [`Fidelity::SlotLevel`].
    #[must_use]
    pub fn with_backend(mut self, backend: BackendModel) -> Self {
        self.backend = backend;
        self
    }

    /// Consecutive empty slots that trigger the `p = 1` termination probe.
    ///
    /// # Panics
    ///
    /// Panics if `streak == 0`.
    #[must_use]
    pub fn with_empty_streak(mut self, streak: u32) -> Self {
        assert!(streak > 0, "empty streak must be positive");
        self.empty_streak = streak;
        self
    }

    /// Configured λ.
    #[must_use]
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// Configured ω.
    #[must_use]
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Configured collision-recovery backend.
    #[must_use]
    pub fn backend(&self) -> &BackendModel {
        &self.backend
    }
}

impl Default for ScatConfig {
    fn default() -> Self {
        ScatConfig::new()
    }
}

/// The Slotted Collision-Aware Tag identification protocol.
///
/// # Example
///
/// ```
/// use rfid_anc::{Scat, ScatConfig};
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 1_000);
/// let scat = Scat::new(ScatConfig::default());
/// let report = run_inventory(&scat, &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 1_000);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scat {
    config: ScatConfig,
    name: String,
}

impl Scat {
    /// Creates SCAT from a configuration.
    #[must_use]
    pub fn new(config: ScatConfig) -> Self {
        let name = match config.backend.name_suffix() {
            Some(suffix) => format!("SCAT-{}-{suffix}", config.lambda),
            None => format!("SCAT-{}", config.lambda),
        };
        Scat { config, name }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ScatConfig {
        &self.config
    }
}

impl AntiCollisionProtocol for Scat {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        self.run_observed(tags, config, rng, &mut NoopSink)
    }
}

impl ObservableProtocol for Scat {
    fn run_observed<S: EventSink>(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
        sink: &mut S,
    ) -> Result<InventoryReport, SimError> {
        let cfg = &self.config;
        let mut engine = Engine::new(
            self.name(),
            tags,
            cfg.lambda,
            cfg.membership,
            &cfg.fidelity,
            &cfg.resolution,
            cfg.recovery,
            cfg.backend,
            config,
            sink,
        );

        // Adaptive λ: SCAT advertises per slot, so its "round" decision
        // point is every slot — the controller's window gates how often λ
        // can actually move.
        let ctl = LambdaController::from_policy(config.lambda_policy(), cfg.lambda);
        let mut omega = ctl.as_ref().map_or(cfg.omega, LambdaController::omega);
        engine.set_lambda_controller(ctl);
        // A non-ANC backend replaces the λ-derived ω* with its own optimal
        // offered load G* (λ is an ANC concept; MPR/CS never deposit
        // records, so the collision-record calculus behind ω* is moot).
        let omega_override = cfg.backend.omega_override();
        if let Some(g) = omega_override {
            omega = g;
        }

        // Population bootstrap.
        let mut population = cfg
            .initial
            .bootstrap(tags.len(), config, rng, &mut engine.report);
        // SCAT has no embedded estimator; its revisions are the bootstrap
        // itself plus the empty-streak halvings below, surfaced so traces
        // show where the external estimate was corrected.
        let mut revision: u64 = 0;
        if S::ENABLED {
            engine.emit_estimator(EstimatorEvent {
                slot: engine.slot_index,
                frame: revision,
                p: (omega / population.max(1.0)).min(1.0),
                n0: 0,
                n1: 0,
                nc: 0,
                estimate: population,
            });
        }

        let advertisement_us = config.timing().advertisement_us();
        let id_ack_us = config.timing().id_ack_us();
        // Rivest-style slack so a pessimistic bootstrap cannot livelock the
        // probability at 1 while several tags remain, plus a geometric
        // decay of the excess on long empty streaks so an optimistic
        // bootstrap cannot pin p near 0 (§IV assumes N is known; these two
        // safeguards keep the protocol safe when it is merely estimated).
        const COLLISION_INCREMENT: f64 = 1.0 / (std::f64::consts::E - 2.0);
        let mut slack: f64 = 0.0;
        let mut empty_run: u32 = 0;
        let mut output = SlotOutput::default();

        while engine.remaining() > 0 {
            // Due re-query slots run first: each carries its own addressed
            // advertisement (SCAT advertises every slot) and any resolved
            // IDs it unlocks are re-broadcast in full, as usual.
            let requeried = engine.drain_requeries(rng, &mut output)?;
            if requeried > 0 {
                engine
                    .report
                    .record_overhead(advertisement_us * f64::from(requeried));
                if !output.resolved.is_empty() {
                    engine
                        .report
                        .record_overhead(id_ack_us * output.resolved.len() as f64);
                }
                if engine.remaining() == 0 {
                    break;
                }
            }
            let known = engine.records.known_count() as f64;
            let remaining_est = (population - known).max(slack).max(1.0);
            let p = (omega / remaining_est).min(1.0);

            engine.report.record_overhead(advertisement_us);
            engine.run_slot(p, rng, &mut output)?;
            match output.class {
                Some(rfid_types::SlotClass::Collision) => {
                    slack = (slack + COLLISION_INCREMENT).max(2.0);
                    empty_run = 0;
                }
                Some(rfid_types::SlotClass::Empty) => {
                    slack = (slack - 1.0).max(0.0);
                    empty_run += 1;
                    // At the optimum only ~24 % of slots are empty, so a
                    // run of 8 (~0.001 % chance) means the estimate far
                    // exceeds the true population: halve the excess.
                    if empty_run >= 8 {
                        population = known + (population - known) / 2.0;
                        if S::ENABLED {
                            revision += 1;
                            engine.emit_estimator(EstimatorEvent {
                                slot: engine.slot_index,
                                frame: revision,
                                p,
                                n0: empty_run,
                                n1: 0,
                                nc: 0,
                                estimate: population,
                            });
                        }
                        empty_run = 0;
                    }
                }
                _ => {
                    slack = (slack - 1.0).max(0.0);
                    empty_run = 0;
                }
            }
            // Resolved IDs are re-broadcast in full in the ack segment.
            if !output.resolved.is_empty() {
                engine
                    .report
                    .record_overhead(id_ack_us * output.resolved.len() as f64);
            }
            // Round boundary: the adaptive-λ controller may re-select λ,
            // and the next advertisement follows the new ω*.
            if let Some((_, new_omega)) = engine.maybe_adjust_lambda() {
                omega = omega_override.unwrap_or(new_omega);
            }
        }

        // Termination detection costs empty_streak + 1 slots, each with
        // SCAT's per-slot advertisement.
        engine
            .report
            .record_overhead(advertisement_us * f64::from(cfg.empty_streak + 1));
        Ok(engine.finish(cfg.empty_streak))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 1_000);
        let report = run_inventory(
            &Scat::new(ScatConfig::default()),
            &tags,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(report.identified, 1_000);
        assert!(report.resolved_from_collisions > 200);
    }

    #[test]
    fn beats_aloha_bound_despite_per_slot_advertisements() {
        let agg = run_many(
            &Scat::new(ScatConfig::default()),
            5_000,
            5,
            &SimConfig::default(),
        )
        .unwrap();
        let aloha = rfid_analysis::bounds::aloha_throughput_bound(SimConfig::default().timing());
        assert!(
            agg.throughput.mean > aloha,
            "SCAT {} <= ALOHA bound {aloha}",
            agg.throughput.mean
        );
    }

    #[test]
    fn lambda_validation() {
        let cfg = ScatConfig::new().with_lambda(4);
        assert_eq!(cfg.lambda(), 4);
        assert!((cfg.omega() - 2.2134).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "lambda must be >= 2")]
    fn lambda_below_two_panics() {
        let _ = ScatConfig::new().with_lambda(1);
    }

    #[test]
    fn prestep_bootstrap_completes() {
        let tags = population::uniform(&mut seeded_rng(2), 800);
        let cfg = ScatConfig::default().with_initial(InitialPopulation::PreStep {
            frame_size: 32,
            rounds: 8,
        });
        let report = run_inventory(&Scat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 800);
    }

    #[test]
    fn bad_guess_still_completes() {
        let tags = population::uniform(&mut seeded_rng(3), 500);
        let cfg = ScatConfig::default().with_initial(InitialPopulation::Guess(2));
        let report = run_inventory(&Scat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 500);
    }

    #[test]
    fn hash_membership_completes() {
        let tags = population::uniform(&mut seeded_rng(4), 300);
        let cfg = ScatConfig::default().with_membership(Membership::Hash);
        let report = run_inventory(&Scat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 300);
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(5), 400);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.1, 0.05, 0.1));
        let report = run_inventory(&Scat::new(ScatConfig::default()), &tags, &config).unwrap();
        assert_eq!(report.identified, 400);
    }

    #[test]
    fn empty_population_only_termination_cost() {
        let report = run_inventory(
            &Scat::new(ScatConfig::default()),
            &[],
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(report.identified, 0);
        assert_eq!(report.slots.total() as u32, 5 + 1);
    }
}
