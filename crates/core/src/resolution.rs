//! Pluggable resolution model and failure-recovery policies.
//!
//! The slot-level protocols classify slots by transmitter count and gate
//! resolvability on `k ≤ λ`; whether the ANC subtraction that a resolution
//! *represents* would actually have succeeded is a separate question,
//! answered by the [`ResolutionModel`]:
//!
//! * [`ResolutionModel::Ideal`] — every λ-gated resolution succeeds
//!   (today's behavior, and the paper's §VI evaluation abstraction).
//! * [`ResolutionModel::SignalBacked`] — every resolution runs the real
//!   MSK-mix → channel → least-squares-subtract → CRC chain from
//!   [`rfid_signal`], with per-hop residual accumulation
//!   ([`rfid_signal::cascade`]), so decode failure becomes SNR-dependent.
//!
//! When an attempt fails, the reader applies a [`RecoveryPolicy`].
//! Completeness holds under *every* policy at *any* SNR: a tag whose
//! record is lost stays active and re-contends in later slots; only
//! throughput degrades.

use rfid_signal::{ChannelModel, MskConfig};

/// How collision-record resolutions are decided under
/// [`Fidelity::SlotLevel`](crate::Fidelity::SlotLevel).
///
/// Ignored under [`Fidelity::SignalLevel`](crate::Fidelity::SignalLevel),
/// where records carry waveforms recorded off the simulated air and
/// physics already decides every resolution.
#[derive(Debug, Clone, Default)]
pub enum ResolutionModel {
    /// Every λ-gated resolution succeeds — reproduces the pre-existing
    /// behavior bit-for-bit (byte-identical reports, identical RNG
    /// trajectory).
    #[default]
    Ideal,
    /// Resolutions run the actual ANC subtract-and-decode chain on
    /// waveforms synthesized at record-deposit time from a dedicated RNG
    /// stream (the protocol-side RNG trajectory stays untouched).
    SignalBacked(SignalResolutionConfig),
}

/// Per-hop residual growth factor `r` fitted by the `repro calibrate`
/// experiment: the value that best matches the closed-form model tier's
/// decode-failure curve ([`rfid_signal::cascade_noise_std`]) to the
/// actual waveform-path cascade ([`rfid_signal::cascade::peel_sequential`])
/// over a grid of channel noise levels and cascade depths. See
/// `results/calibration.csv` and `tests/fidelity.rs` for the agreement
/// this value is held to.
pub const CALIBRATED_RESIDUAL_PER_HOP: f64 = 0.20;

/// Parameters of [`ResolutionModel::SignalBacked`].
#[derive(Debug, Clone)]
pub struct SignalResolutionConfig {
    /// MSK modulation used to synthesize and decode record waveforms.
    pub msk: MskConfig,
    /// Channel each synthesized component passes through. The model's
    /// `noise_std` is the sweep axis of the `snr-sweep` experiment.
    pub channel: ChannelModel,
    /// Per-hop residual growth factor `r` of
    /// [`rfid_signal::cascade_noise_std`]: a resolution at cascade depth
    /// `d` suffers extra noise variance `noise_std²·((1+r)^(d−1) − 1)`.
    /// Zero disables accumulation.
    pub residual_per_hop: f64,
}

impl Default for SignalResolutionConfig {
    fn default() -> Self {
        SignalResolutionConfig {
            msk: MskConfig::default(),
            channel: ChannelModel::default(),
            residual_per_hop: CALIBRATED_RESIDUAL_PER_HOP,
        }
    }
}

impl SignalResolutionConfig {
    /// This configuration with a different channel noise level.
    #[must_use]
    pub fn with_noise_std(mut self, noise_std: f64) -> Self {
        self.channel = self.channel.with_noise_std(noise_std);
        self
    }
}

/// What the reader does when a signal-backed resolution attempt fails
/// (CRC mismatch or residual defeat).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryPolicy {
    /// Discard the spent record; the unresolved tag stays active and
    /// re-contends in later slots. The baseline — also the only behavior
    /// failures had before recovery policies existed.
    #[default]
    DropRecord,
    /// Schedule a dedicated re-query slot addressed at the unresolved
    /// remainder: the reader announces the record's slot index, the one
    /// unknown tag retransmits alone, and a clean singleton decode
    /// recovers it. Failed re-queries back off linearly
    /// (`backoff_slots·attempt`) and give up after `max_retries`,
    /// returning the tag to open contention.
    Requery {
        /// Re-query attempts per failed record before giving up.
        max_retries: u32,
        /// Slots of linear backoff between attempts.
        backoff_slots: u32,
    },
    /// Retry a *cascade* failure once at depth 1 — the reader re-runs the
    /// subtraction directly against the stored record instead of chaining
    /// through accumulated residuals, salvaging the partial cascade.
    /// Failures at depth 1 (pure channel noise) still drop.
    SalvagePartial,
}

impl RecoveryPolicy {
    /// The default re-query policy: 3 retries, 4-slot backoff.
    #[must_use]
    pub fn requery() -> Self {
        RecoveryPolicy::Requery {
            max_retries: 3,
            backoff_slots: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert!(matches!(ResolutionModel::default(), ResolutionModel::Ideal));
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::DropRecord);
        let cfg = SignalResolutionConfig::default();
        assert!(cfg.residual_per_hop > 0.0);
        let quiet = cfg.with_noise_std(0.0);
        assert_eq!(quiet.channel.noise_std(), 0.0);
    }

    #[test]
    fn requery_shorthand() {
        assert!(matches!(
            RecoveryPolicy::requery(),
            RecoveryPolicy::Requery {
                max_retries: 3,
                backoff_slots: 4
            }
        ));
    }
}
