//! A small-vector of `u32` that stores up to `N` elements inline.
//!
//! Collision records hold their participants as dense tag indices; usable
//! records have `k ≤ λ ≤ 4` participants, and a tag's record list is almost
//! always short, so both live inline with no heap traffic. Only the rare
//! over-λ record (Poisson tail) spills to a heap `Vec`.

/// Inline-first vector of dense `u32` indices.
#[derive(Debug, Clone)]
pub(crate) struct InlineVec<const N: usize> {
    /// Number of inline elements; ignored once `spill` is non-empty.
    len: u32,
    inline: [u32; N],
    spill: Vec<u32>,
}

impl<const N: usize> InlineVec<N> {
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [0; N],
            spill: Vec::new(),
        }
    }

    pub fn push(&mut self, value: u32) {
        if !self.spill.is_empty() {
            self.spill.push(value);
        } else if (self.len as usize) < N {
            self.inline[self.len as usize] = value;
            self.len += 1;
        } else {
            // First spill: move the inline prefix to the heap.
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(value);
        }
    }

    pub fn as_slice(&self) -> &[u32] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, value: u32) -> bool {
        self.as_slice().contains(&value)
    }

    /// Empties the vector and releases any spilled heap storage.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill = Vec::new();
    }
}

impl<const N: usize> Default for InlineVec<N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: InlineVec<4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
        v.push(4);
        v.push(5);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn contains_and_clear() {
        let mut v: InlineVec<2> = InlineVec::new();
        v.push(7);
        v.push(9);
        assert!(v.contains(7));
        assert!(!v.contains(8));
        v.push(11); // spilled
        assert!(v.contains(11));
        v.clear();
        assert!(v.is_empty());
        assert!(!v.contains(7));
        // Reusable after clearing out of the spilled state.
        v.push(1);
        assert_eq!(v.as_slice(), &[1]);
    }

    #[test]
    fn preserves_insertion_order_across_spill() {
        let mut v: InlineVec<3> = InlineVec::new();
        let values = [5u32, 3, 8, 1, 9, 2];
        for &x in &values {
            v.push(x);
        }
        assert_eq!(v.as_slice(), &values);
    }
}
