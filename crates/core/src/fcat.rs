//! FCAT — the Framed Collision-Aware Tag identification protocol (§V), the
//! paper's main protocol.
//!
//! FCAT removes SCAT's three inefficiencies (§V-A):
//!
//! 1. **No pre-step estimator** — the remaining-tag count is re-estimated
//!    after every frame from the frame's collision-slot count via Eq. (12).
//! 2. **One advertisement per frame** — `⟨frame index, p_i⟩` is broadcast
//!    before each frame of `f` slots instead of before every slot.
//! 3. **Index acknowledgements** — a resolved collision record is
//!    acknowledged by its 23-bit slot index; the tag that transmitted in
//!    that slot (and is not yet acknowledged) recognizes the index and
//!    stops, saving 96 − 23 bits per resolved ID.

use crate::backend::{BackendModel, RecoveryBackend as _};
use crate::config::{Fidelity, InitialPopulation, Membership};
use crate::engine::{Engine, SlotOutput};
use crate::lambda::LambdaController;
use crate::resolution::{RecoveryPolicy, ResolutionModel};
use rand::rngs::StdRng;
use rfid_analysis::estimator::{
    estimate_remaining_from_collisions, estimate_remaining_from_empties,
};
use rfid_analysis::omega::optimal_omega;
use rfid_obs::{EstimatorEvent, EventSink, NoopSink};
use rfid_sim::{AntiCollisionProtocol, InventoryReport, ObservableProtocol, SimConfig, SimError};
use rfid_types::{SlotClass, TagId};

/// How resolved collision records are acknowledged over the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AckMode {
    /// Announce the 23-bit slot index of the resolved record (§V-A/§V-B,
    /// the paper's FCAT design).
    #[default]
    SlotIndex,
    /// Broadcast the full 96-bit ID, as SCAT does — kept for the ablation
    /// quantifying how much the index scheme actually saves.
    FullId,
}

/// Which per-frame statistic feeds the embedded estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EstimatorInput {
    /// Invert the collision count `n_c` (Eq. 12) — the paper's choice.
    #[default]
    Collisions,
    /// Invert the empty count `n₀` (Eq. 7) — mentioned and rejected by the
    /// paper for its larger variance; kept for the estimator ablation.
    Empties,
    /// Oracle: skip estimation and use the true remaining count. Isolates
    /// estimator noise in ablations.
    Oracle,
}

/// Configuration of [`Fcat`].
#[derive(Debug, Clone)]
pub struct FcatConfig {
    lambda: u32,
    omega: f64,
    frame_size: u32,
    initial: InitialPopulation,
    estimator: EstimatorInput,
    ack_mode: AckMode,
    membership: Membership,
    fidelity: Fidelity,
    resolution: ResolutionModel,
    recovery: RecoveryPolicy,
    backend: BackendModel,
}

impl FcatConfig {
    /// The paper's evaluation setting: λ = 2, ω = √2, `f = 30`, collision-
    /// count estimator, a fixed initial guess (no oracle needed), sampled
    /// membership, slot-level fidelity.
    #[must_use]
    pub fn new() -> Self {
        FcatConfig {
            lambda: 2,
            omega: optimal_omega(2),
            frame_size: 30,
            initial: InitialPopulation::Guess(1_024),
            estimator: EstimatorInput::Collisions,
            ack_mode: AckMode::SlotIndex,
            membership: Membership::Sampled,
            fidelity: Fidelity::SlotLevel,
            resolution: ResolutionModel::Ideal,
            recovery: RecoveryPolicy::DropRecord,
            backend: BackendModel::Anc,
        }
    }

    /// Sets λ and resets ω to the matching optimum `(λ!)^{1/λ}`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 2` (like every other builder in the workspace,
    /// misconfiguration is a programmer error, not a recoverable state).
    #[must_use]
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        assert!(lambda >= 2, "lambda must be >= 2, got {lambda}");
        self.lambda = lambda;
        self.omega = optimal_omega(lambda);
        self
    }

    /// Overrides ω (for the Fig. 5 sweep and Table IV search).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is not strictly positive and finite.
    #[must_use]
    pub fn with_omega(mut self, omega: f64) -> Self {
        assert!(omega.is_finite() && omega > 0.0, "omega must be positive");
        self.omega = omega;
        self
    }

    /// Sets the frame size `f` (for the Fig. 6 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0`.
    #[must_use]
    pub fn with_frame_size(mut self, frame_size: u32) -> Self {
        assert!(frame_size > 0, "frame_size must be positive");
        self.frame_size = frame_size;
        self
    }

    /// Sets the initial population bootstrap.
    #[must_use]
    pub fn with_initial(mut self, initial: InitialPopulation) -> Self {
        self.initial = initial;
        self
    }

    /// Sets which statistic the embedded estimator inverts.
    #[must_use]
    pub fn with_estimator(mut self, estimator: EstimatorInput) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets how resolved records are acknowledged.
    #[must_use]
    pub fn with_ack_mode(mut self, ack_mode: AckMode) -> Self {
        self.ack_mode = ack_mode;
        self
    }

    /// Sets the membership simulation mode.
    #[must_use]
    pub fn with_membership(mut self, membership: Membership) -> Self {
        self.membership = membership;
        self
    }

    /// Sets the fidelity level.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the collision-record resolution model (only consulted under
    /// [`Fidelity::SlotLevel`]; signal-level fidelity already runs real
    /// waveforms end to end).
    #[must_use]
    pub fn with_resolution(mut self, resolution: ResolutionModel) -> Self {
        self.resolution = resolution;
        self
    }

    /// Sets the recovery policy applied when a signal-backed resolution
    /// attempt fails.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the collision-recovery backend (ANC record cascade by
    /// default; see [`BackendModel`]). A non-ANC backend overrides the
    /// λ-derived ω* with its own optimal offered load `G*` and, like the
    /// resolution model, is only consulted under
    /// [`Fidelity::SlotLevel`].
    #[must_use]
    pub fn with_backend(mut self, backend: BackendModel) -> Self {
        self.backend = backend;
        self
    }

    /// Configured λ.
    #[must_use]
    pub fn lambda(&self) -> u32 {
        self.lambda
    }

    /// Configured ω.
    #[must_use]
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Configured frame size.
    #[must_use]
    pub fn frame_size(&self) -> u32 {
        self.frame_size
    }

    /// Configured initial-population bootstrap.
    #[must_use]
    pub fn initial(&self) -> InitialPopulation {
        self.initial
    }

    /// Configured estimator input.
    #[must_use]
    pub fn estimator(&self) -> EstimatorInput {
        self.estimator
    }

    /// Configured acknowledgement mode.
    #[must_use]
    pub fn ack_mode(&self) -> AckMode {
        self.ack_mode
    }

    /// Configured resolution model.
    #[must_use]
    pub fn resolution(&self) -> &ResolutionModel {
        &self.resolution
    }

    /// Configured recovery policy.
    #[must_use]
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Configured collision-recovery backend.
    #[must_use]
    pub fn backend(&self) -> &BackendModel {
        &self.backend
    }
}

impl Default for FcatConfig {
    fn default() -> Self {
        FcatConfig::new()
    }
}

/// The per-frame estimate update shared by the aggregate [`Fcat`] engine
/// and the message-level reader device: inverts the configured frame
/// statistic (Eq. 12 or the n₀ variant), with a doubling fallback when the
/// frame ran degenerate at `p = 1` (where the inversion is undefined).
pub(crate) fn update_estimate(
    input: EstimatorInput,
    previous: f64,
    n0: u32,
    nc: u32,
    frame_size: u32,
    p: f64,
    omega: f64,
) -> f64 {
    if p >= 1.0 {
        return if nc > 0 {
            (previous * 2.0).max(2.0)
        } else {
            0.0
        };
    }
    match input {
        EstimatorInput::Collisions => {
            estimate_remaining_from_collisions(nc.min(frame_size), frame_size, p, omega)
        }
        EstimatorInput::Empties => {
            estimate_remaining_from_empties(n0.min(frame_size), frame_size, p)
        }
        EstimatorInput::Oracle => previous,
    }
}

/// The Framed Collision-Aware Tag identification protocol.
///
/// # Example
///
/// ```
/// use rfid_anc::{Fcat, FcatConfig};
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 1_000);
/// // FCAT-3: assumes a future ANC that resolves 3-collisions.
/// let fcat = Fcat::new(FcatConfig::default().with_lambda(3));
/// let report = run_inventory(&fcat, &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 1_000);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fcat {
    config: FcatConfig,
    name: String,
}

impl Fcat {
    /// Creates FCAT from a configuration.
    #[must_use]
    pub fn new(config: FcatConfig) -> Self {
        let name = match config.backend.name_suffix() {
            Some(suffix) => format!("FCAT-{}-{suffix}", config.lambda),
            None => format!("FCAT-{}", config.lambda),
        };
        Fcat { config, name }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FcatConfig {
        &self.config
    }
}

impl AntiCollisionProtocol for Fcat {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        self.run_observed(tags, config, rng, &mut NoopSink)
    }
}

impl ObservableProtocol for Fcat {
    fn run_observed<S: EventSink>(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
        sink: &mut S,
    ) -> Result<InventoryReport, SimError> {
        let cfg = &self.config;
        let mut engine = Engine::new(
            self.name(),
            tags,
            cfg.lambda,
            cfg.membership,
            &cfg.fidelity,
            &cfg.resolution,
            cfg.recovery,
            cfg.backend,
            config,
            sink,
        );

        // Adaptive λ: the controller (if the run's policy asks for one)
        // re-selects λ at frame boundaries from the residual-SNR stream,
        // and ω* follows λ. A fixed policy leaves ω at the configured
        // value for the whole run.
        let ctl = LambdaController::from_policy(config.lambda_policy(), cfg.lambda);
        let mut omega = ctl.as_ref().map_or(cfg.omega, LambdaController::omega);
        engine.set_lambda_controller(ctl);
        // A non-ANC backend replaces the λ-derived ω* with its own optimal
        // offered load G* (λ is an ANC concept; MPR/CS never deposit
        // records, so the collision-record calculus behind ω* is moot).
        let omega_override = cfg.backend.omega_override();
        if let Some(g) = omega_override {
            omega = g;
        }

        let mut estimate = cfg
            .initial
            .bootstrap(tags.len(), config, rng, &mut engine.report);

        let f = cfg.frame_size;
        let mut frame: u64 = 0;
        let frame_adv_us = config.timing().frame_advertisement_us();
        let resolved_ack_us = match cfg.ack_mode {
            AckMode::SlotIndex => config.timing().index_ack_us(),
            AckMode::FullId => config.timing().id_ack_us(),
        };

        let index_ack_us = config.timing().index_ack_us();
        let mut output = SlotOutput::default();
        while engine.remaining() > 0 {
            // Due re-query slots run between frames: each is an addressed
            // command (paid as a 23-bit index announcement, like a record
            // ack) plus one basic slot, charged inside the engine.
            let requeried = engine.drain_requeries(rng, &mut output)?;
            if requeried > 0 {
                engine
                    .report
                    .record_overhead(index_ack_us * f64::from(requeried));
                if !output.resolved.is_empty() {
                    engine
                        .report
                        .record_overhead(resolved_ack_us * output.resolved.len() as f64);
                }
                if engine.remaining() == 0 {
                    break;
                }
            }
            let p = (omega / estimate.max(1.0)).clamp(1e-9, 1.0);
            engine.report.record_overhead(frame_adv_us);

            let mut n0: u32 = 0;
            let mut n1: u32 = 0;
            let mut nc: u32 = 0;
            for _ in 0..f {
                engine.run_slot(p, rng, &mut output)?;
                match output.class {
                    Some(SlotClass::Empty) => n0 += 1,
                    Some(SlotClass::Singleton) => n1 += 1,
                    Some(SlotClass::Collision) => nc += 1,
                    None => {}
                }
                // Resolved records are acknowledged by slot index in this
                // slot's acknowledgement segment.
                if !output.resolved.is_empty() {
                    engine
                        .report
                        .record_overhead(resolved_ack_us * output.resolved.len() as f64);
                }
                if engine.remaining() == 0 {
                    break;
                }
            }

            // Per-frame estimator update (§V-C).
            estimate = match cfg.estimator {
                EstimatorInput::Oracle => engine.remaining() as f64,
                input => update_estimate(input, estimate, n0, nc, f, p, omega),
            };
            if S::ENABLED {
                engine.emit_estimator(EstimatorEvent {
                    slot: engine.slot_index,
                    frame,
                    p,
                    n0,
                    n1,
                    nc,
                    estimate,
                });
            }
            // Frame boundary: the adaptive-λ controller may re-select λ,
            // and the next frame's p follows the new ω*.
            if let Some((_, new_omega)) = engine.maybe_adjust_lambda() {
                omega = omega_override.unwrap_or(new_omega);
            }
            frame += 1;
        }

        // Termination, charged as the reader actually observes it (and as
        // the message-level implementation pays it): one all-empty frame,
        // then a one-slot p = 1 probe — each behind a frame advertisement.
        engine.report.record_overhead(2.0 * frame_adv_us);
        Ok(engine.finish(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignalLevelConfig;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    fn fcat(lambda: u32) -> Fcat {
        Fcat::new(FcatConfig::default().with_lambda(lambda))
    }

    #[test]
    fn reads_all_tags_every_lambda() {
        let tags = population::uniform(&mut seeded_rng(1), 1_500);
        for lambda in 2..=4 {
            let report = run_inventory(&fcat(lambda), &tags, &SimConfig::default()).unwrap();
            assert_eq!(report.identified, 1_500, "lambda {lambda}");
            assert!(report.resolved_from_collisions > 300, "lambda {lambda}");
        }
    }

    #[test]
    fn fcat2_throughput_matches_paper_band() {
        // Paper Table I: FCAT-2 at 197.7–201.7 tags/s.
        let agg = run_many(&fcat(2), 5_000, 5, &SimConfig::default()).unwrap();
        assert!(
            (190.0..215.0).contains(&agg.throughput.mean),
            "throughput {}",
            agg.throughput.mean
        );
    }

    #[test]
    fn lambda_ordering_matches_paper() {
        // FCAT-4 > FCAT-3 > FCAT-2 in throughput (Table I).
        let config = SimConfig::default();
        let t2 = run_many(&fcat(2), 3_000, 4, &config)
            .unwrap()
            .throughput
            .mean;
        let t3 = run_many(&fcat(3), 3_000, 4, &config)
            .unwrap()
            .throughput
            .mean;
        let t4 = run_many(&fcat(4), 3_000, 4, &config)
            .unwrap()
            .throughput
            .mean;
        assert!(t3 > t2, "t3 {t3} <= t2 {t2}");
        assert!(t4 > t3, "t4 {t4} <= t3 {t3}");
    }

    #[test]
    fn improvement_over_dfsa_in_paper_range() {
        // Paper: 51.1–55.6 % improvement of FCAT-2 over DFSA.
        let config = SimConfig::default();
        let fcat_tp = run_many(&fcat(2), 5_000, 5, &config)
            .unwrap()
            .throughput
            .mean;
        let dfsa_tp = run_many(&rfid_protocols::Dfsa::new(), 5_000, 5, &config)
            .unwrap()
            .throughput
            .mean;
        let gain = fcat_tp / dfsa_tp - 1.0;
        assert!(
            (0.40..0.75).contains(&gain),
            "gain {gain} (fcat {fcat_tp}, dfsa {dfsa_tp})"
        );
    }

    #[test]
    fn estimator_starts_cold_and_converges() {
        // Wildly wrong initial guess, still completes efficiently.
        let tags = population::uniform(&mut seeded_rng(2), 4_000);
        let cfg = FcatConfig::default().with_initial(InitialPopulation::Guess(16));
        let report = run_inventory(&Fcat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 4_000);
        // Within 2× of the useful-slot optimum (paper: never exceeds 2N).
        assert!(report.slots.total() < 2 * 4_000 * 2);
    }

    #[test]
    fn two_remaining_tags_no_livelock() {
        // Estimate collapse to 1 with >1 tags left forces p = 1 and pure
        // collisions; the saturation fallback must recover.
        let tags = population::uniform(&mut seeded_rng(3), 3);
        let cfg = FcatConfig::default().with_initial(InitialPopulation::Guess(1));
        let report = run_inventory(&Fcat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 3);
    }

    #[test]
    fn oracle_and_empties_estimators_complete() {
        let tags = population::uniform(&mut seeded_rng(4), 2_000);
        for est in [EstimatorInput::Oracle, EstimatorInput::Empties] {
            let cfg = FcatConfig::default().with_estimator(est);
            let report = run_inventory(&Fcat::new(cfg), &tags, &SimConfig::default()).unwrap();
            assert_eq!(report.identified, 2_000, "{est:?}");
        }
    }

    #[test]
    fn hash_membership_close_to_sampled() {
        let config = SimConfig::default();
        let sampled = run_many(&fcat(2), 2_000, 4, &config).unwrap();
        let hash_cfg = FcatConfig::default().with_membership(Membership::Hash);
        let hashed = run_many(&Fcat::new(hash_cfg), 2_000, 4, &config).unwrap();
        let rel =
            (sampled.throughput.mean - hashed.throughput.mean).abs() / sampled.throughput.mean;
        assert!(
            rel < 0.05,
            "sampled {} hash {}",
            sampled.throughput.mean,
            hashed.throughput.mean
        );
    }

    #[test]
    fn signal_level_fidelity_completes_and_resolves() {
        let tags = population::uniform(&mut seeded_rng(5), 150);
        let cfg = FcatConfig::default()
            .with_fidelity(Fidelity::SignalLevel(SignalLevelConfig::default()))
            .with_initial(InitialPopulation::Known);
        let report = run_inventory(&Fcat::new(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 150);
        assert!(report.resolved_from_collisions > 10);
    }

    #[test]
    fn completes_under_heavy_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(6), 500);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.15, 0.1, 0.3));
        let report = run_inventory(&fcat(2), &tags, &config).unwrap();
        assert_eq!(report.identified, 500);
    }

    #[test]
    fn unresolvable_collisions_reduce_but_do_not_break() {
        // §IV-E: with every collision slot spoiled, FCAT degenerates to an
        // ALOHA-like protocol but still reads everything.
        let tags = population::uniform(&mut seeded_rng(7), 400);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.0, 0.0, 1.0));
        let report = run_inventory(&fcat(2), &tags, &config).unwrap();
        assert_eq!(report.identified, 400);
        assert_eq!(report.resolved_from_collisions, 0);
    }

    #[test]
    fn empty_population_only_termination_cost() {
        // One all-empty frame plus the p = 1 probe — identical to what the
        // message-level reader observes (tests in device/protocol.rs).
        let report = run_inventory(&fcat(2), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 31);
    }

    #[test]
    fn full_id_acks_cost_throughput() {
        // §V-A's third inefficiency, quantified: 96-bit resolution acks
        // instead of 23-bit indices must slow the protocol down, by less
        // than the advertisement redesign does.
        let config = SimConfig::default();
        let index = run_many(&fcat(2), 5_000, 4, &config)
            .unwrap()
            .throughput
            .mean;
        let full = run_many(
            &Fcat::new(FcatConfig::default().with_ack_mode(AckMode::FullId)),
            5_000,
            4,
            &config,
        )
        .unwrap()
        .throughput
        .mean;
        assert!(full < index, "full {full} !< index {index}");
        assert!(full > 0.9 * index, "full {full} implausibly low vs {index}");
    }

    #[test]
    fn trace_records_every_slot() {
        let tags = population::uniform(&mut seeded_rng(8), 300);
        let config = SimConfig::default().with_trace(true);
        let report = run_inventory(&fcat(2), &tags, &config).unwrap();
        assert_eq!(report.trace.len() as u64, report.slots.total());
        let learned: u32 = report.trace.iter().map(|e| e.learned).sum();
        assert_eq!(learned as usize, report.identified);
        // Trace classes agree with the aggregate counters.
        let collisions = report
            .trace
            .iter()
            .filter(|e| e.class == rfid_types::SlotClass::Collision)
            .count() as u64;
        // The termination tail's empty slots are charged via finish() and
        // are not traced, so compare collision counts (tail-free).
        assert_eq!(collisions, report.slots.collision);
        // Ground-truth transmitter counts match classes.
        for event in &report.trace {
            match event.class {
                rfid_types::SlotClass::Empty => assert_eq!(event.transmitters, 0),
                rfid_types::SlotClass::Singleton => assert_eq!(event.transmitters, 1),
                rfid_types::SlotClass::Collision => assert!(event.transmitters >= 1),
            }
        }
    }

    #[test]
    fn capture_boosts_throughput_toward_signal_level() {
        // Extension G showed the full DSP chain outperforms the k <= λ
        // abstraction partly via capture; the slot-level capture knob must
        // reproduce that direction.
        let base = run_many(&fcat(2), 3_000, 4, &SimConfig::default())
            .unwrap()
            .throughput
            .mean;
        let config = SimConfig::default().with_errors(ErrorModel::none().with_capture(0.5));
        let captured = run_many(&fcat(2), 3_000, 4, &config)
            .unwrap()
            .throughput
            .mean;
        assert!(captured > base, "captured {captured} !> base {base}");
    }

    #[test]
    fn no_trace_by_default() {
        let tags = population::uniform(&mut seeded_rng(8), 50);
        let report = run_inventory(&fcat(2), &tags, &SimConfig::default()).unwrap();
        assert!(report.trace.is_empty());
    }

    #[test]
    fn config_accessors() {
        let cfg = FcatConfig::default().with_frame_size(50).with_omega(1.9);
        assert_eq!(cfg.frame_size(), 50);
        assert!((cfg.omega() - 1.9).abs() < 1e-12);
        assert_eq!(cfg.lambda(), 2);
    }

    #[test]
    #[should_panic(expected = "lambda must be >= 2")]
    fn lambda_below_two_panics() {
        let _ = FcatConfig::default().with_lambda(0);
    }
}
