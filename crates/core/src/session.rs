//! FCAT across periodic inventory rounds: estimator warm-starting.
//!
//! FCAT has no tree to preserve, but its embedded estimator's convergence
//! cost *can* be carried over: the previous round's final population count
//! is an excellent prior for the next round under moderate churn, so a
//! warm session skips the cold-start frames a fresh `Guess` pays.

use crate::{Fcat, FcatConfig, InitialPopulation, Scat, ScatConfig};
use rand::rngs::StdRng;
use rfid_sim::rounds::MultiRoundSession;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::TagId;

/// Session-state FCAT: each round bootstraps its population estimate from
/// the previous round's identified count.
///
/// # Example
///
/// ```
/// use rfid_anc::{FcatConfig, FcatSession};
/// use rfid_sim::rounds::{run_rounds, ChurnModel};
/// use rfid_sim::SimConfig;
///
/// let mut session = FcatSession::new(FcatConfig::default());
/// let report = run_rounds(&mut session, 500, 3, &ChurnModel::new(0.1, 50),
///                         &SimConfig::default())?;
/// assert_eq!(report.per_round.len(), 3);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FcatSession {
    base: FcatConfig,
    last_count: Option<usize>,
    name: String,
}

impl FcatSession {
    /// Creates a cold session; the first round uses `base`'s own
    /// initial-population setting.
    #[must_use]
    pub fn new(base: FcatConfig) -> Self {
        let name = format!("FCAT-{}-session", base.lambda());
        FcatSession {
            base,
            last_count: None,
            name,
        }
    }

    /// The estimate the next round will start from, if warmed.
    #[must_use]
    pub fn warm_estimate(&self) -> Option<usize> {
        self.last_count
    }
}

impl MultiRoundSession for FcatSession {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_round(
        &mut self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let cfg = match self.last_count {
            Some(count) => self
                .base
                .clone()
                .with_initial(InitialPopulation::Guess(count.max(1) as u32)),
            None => self.base.clone(),
        };
        let report = Fcat::new(cfg).run(tags, config, rng)?;
        self.last_count = Some(report.identified);
        Ok(report)
    }
}

/// Session-state SCAT: like [`FcatSession`], each round seeds the initial
/// population estimate from the previous round's identified count, so
/// re-inventory rounds skip the pre-step bootstrap.
///
/// # Example
///
/// ```
/// use rfid_anc::{ScatConfig, ScatSession};
/// use rfid_sim::rounds::{run_rounds, ChurnModel};
/// use rfid_sim::SimConfig;
///
/// let mut session = ScatSession::new(ScatConfig::default());
/// let report = run_rounds(&mut session, 500, 3, &ChurnModel::new(0.1, 50),
///                         &SimConfig::default())?;
/// assert_eq!(report.per_round.len(), 3);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScatSession {
    base: ScatConfig,
    last_count: Option<usize>,
    name: String,
}

impl ScatSession {
    /// Creates a cold session; the first round uses `base`'s own
    /// initial-population setting.
    #[must_use]
    pub fn new(base: ScatConfig) -> Self {
        let name = format!("SCAT-{}-session", base.lambda());
        ScatSession {
            base,
            last_count: None,
            name,
        }
    }

    /// The estimate the next round will start from, if warmed.
    #[must_use]
    pub fn warm_estimate(&self) -> Option<usize> {
        self.last_count
    }
}

impl MultiRoundSession for ScatSession {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_round(
        &mut self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let cfg = match self.last_count {
            Some(count) => self
                .base
                .clone()
                .with_initial(InitialPopulation::Guess(count.max(1) as u32)),
            None => self.base.clone(),
        };
        let report = Scat::new(cfg).run(tags, config, rng)?;
        self.last_count = Some(report.identified);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::rounds::{run_rounds, ChurnModel};

    #[test]
    fn warm_start_tracks_population() {
        let mut session =
            FcatSession::new(FcatConfig::default().with_initial(InitialPopulation::Guess(16)));
        assert_eq!(session.warm_estimate(), None);
        let report = run_rounds(
            &mut session,
            2_000,
            3,
            &ChurnModel::new(0.05, 100),
            &SimConfig::default().with_seed(1),
        )
        .unwrap();
        assert_eq!(report.per_round.len(), 3);
        // The session now knows the scale of the population.
        let warm = session.warm_estimate().unwrap();
        assert!((1_700..2_400).contains(&warm), "warm estimate {warm}");
        // Every round read its full population.
        for (r, n) in report.per_round.iter().zip(&report.population_per_round) {
            assert_eq!(r.identified, *n);
        }
    }

    #[test]
    fn warm_rounds_not_slower_than_cold_guess() {
        // With a bad base guess, the warm rounds must recover the full
        // throughput while the cold round pays convergence frames.
        let mut session =
            FcatSession::new(FcatConfig::default().with_initial(InitialPopulation::Guess(16)));
        let report = run_rounds(
            &mut session,
            3_000,
            4,
            &ChurnModel::none(),
            &SimConfig::default().with_seed(2),
        )
        .unwrap();
        let cold = report.per_round[0].throughput_tags_per_sec;
        let warm = report.warm_throughput();
        assert!(
            warm >= cold - 2.0,
            "warm {warm} unexpectedly below cold {cold}"
        );
        assert!(warm > 185.0, "warm {warm}");
    }

    #[test]
    fn scat_session_warm_start_tracks_population() {
        let mut session =
            ScatSession::new(ScatConfig::default().with_initial(InitialPopulation::Guess(16)));
        assert_eq!(session.warm_estimate(), None);
        let report = run_rounds(
            &mut session,
            1_000,
            3,
            &ChurnModel::new(0.05, 50),
            &SimConfig::default().with_seed(4),
        )
        .unwrap();
        assert_eq!(report.per_round.len(), 3);
        let warm = session.warm_estimate().unwrap();
        assert!((800..1_200).contains(&warm), "warm estimate {warm}");
        for (r, n) in report.per_round.iter().zip(&report.population_per_round) {
            assert_eq!(r.identified, *n);
        }
    }

    #[test]
    fn empty_round_resets_gracefully() {
        let mut session = FcatSession::new(FcatConfig::default());
        let mut rng = rfid_sim::seeded_rng(3);
        let config = SimConfig::default();
        let report = session.run_round(&[], &config, &mut rng).unwrap();
        assert_eq!(report.identified, 0);
        assert_eq!(session.warm_estimate(), Some(0));
        // Next round with tags still works (guess clamps to >= 1).
        let tags = rfid_types::population::uniform(&mut rng, 50);
        let report = session.run_round(&tags, &config, &mut rng).unwrap();
        assert_eq!(report.identified, 50);
    }
}
