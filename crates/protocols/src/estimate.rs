//! Tag-count estimation.
//!
//! * [`schoute_backlog`] — the classic per-frame backlog estimate used by
//!   DFSA/EDFSA: an expected `≈ 2.39` tags occupy each collided slot when
//!   the frame is optimally sized.
//! * [`PreStepEstimator`] — a probabilistic-frame population estimator in
//!   the spirit of Kodialam-Nandagopal \[24\], usable as the pre-step the
//!   paper's SCAT assumes ("Its value can be estimated to an arbitrary
//!   accuracy in a pre-step of SCAT"). FCAT exists precisely to amortize
//!   this cost away, and the `ablation-estimator` experiment quantifies it.

use rand::rngs::StdRng;
use rfid_analysis::estimator::estimate_remaining_from_empties;
use rfid_sim::sampling::sample_binomial;
use rfid_sim::SimConfig;

/// Schoute's backlog factor: expected tags per collided slot at optimal
/// frame sizing (`(1 − 2/e)/(1 − 2/e) …` algebra yields ≈ 2.392).
pub const SCHOUTE_FACTOR: f64 = 2.392;

/// Estimated unread backlog after a frame with `collisions` collided slots.
#[must_use]
pub fn schoute_backlog(collisions: u32) -> f64 {
    SCHOUTE_FACTOR * f64::from(collisions)
}

/// Outcome of a pre-step estimation round.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PreStepOutcome {
    /// Estimated population size.
    pub estimate: f64,
    /// Slots consumed by the estimation.
    pub slots_used: u64,
    /// Air time consumed, in microseconds.
    pub elapsed_us: f64,
}

/// Probabilistic-frame population estimator (pre-step for SCAT).
///
/// This is the lightweight per-slot-Bernoulli probe wired into
/// [`InitialPopulation::PreStep`]; the faithful framed Kodialam-Nandagopal
/// schemes (each tag answers in at most one slot per frame, with ZE/CE
/// inversion and variance-weighted combination) live in
/// [`crate::kn_estimator`] — the two model *different* probing processes
/// and are not interchangeable.
///
/// [`InitialPopulation::PreStep`]: https://docs.rs/rfid-anc
///
/// The reader runs short frames in which every tag responds to each slot
/// with probability `p` (a short random string, not its full ID — so these
/// slots are cheaper than report slots; we charge them at one ack length).
/// `p` starts high and is geometrically refined: frames that are all-busy
/// halve `p`, frames that are all-empty raise it. Once the frame shows a
/// mixed empty/busy pattern, each frame's empty count inverts Eq. (7) into
/// a population estimate, and `rounds` such estimates are averaged.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PreStepEstimator {
    frame_size: u32,
    rounds: u32,
}

impl PreStepEstimator {
    /// Creates an estimator with the given measurement frame size and
    /// number of averaged measurement rounds.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0` or `rounds == 0`.
    #[must_use]
    pub fn new(frame_size: u32, rounds: u32) -> Self {
        assert!(frame_size > 0, "frame_size must be positive");
        assert!(rounds > 0, "rounds must be positive");
        PreStepEstimator { frame_size, rounds }
    }

    /// Simulates the estimation pre-step against a hidden population of
    /// `actual` tags, charging air time to the returned outcome.
    #[must_use]
    pub fn estimate(&self, actual: usize, config: &SimConfig, rng: &mut StdRng) -> PreStepOutcome {
        // Estimation slots carry only energy/no-energy information; charge
        // a short slot: guard + ack-length burst.
        let slot_us = config.timing().guard_us() + config.timing().ack_us();
        let mut slots_used: u64 = 0;
        let f = self.frame_size;

        if actual == 0 {
            // One all-empty probe frame at p = 1 settles it.
            return PreStepOutcome {
                estimate: 0.0,
                slots_used: u64::from(f),
                elapsed_us: f64::from(f) * slot_us,
            };
        }

        let mut p: f64 = 0.5;
        let mut last_saturated_p: Option<f64> = None;
        let mut estimates: Vec<f64> = Vec::with_capacity(self.rounds as usize);
        // Cap the search to keep the pre-step bounded even for absurd
        // populations; 96 halvings cover any feasible tag count.
        for _ in 0..96 {
            if estimates.len() >= self.rounds as usize {
                break;
            }
            let mut empties: u32 = 0;
            for _ in 0..f {
                slots_used += 1;
                if sample_binomial(actual, p, rng) == 0 {
                    empties += 1;
                }
            }
            if empties == 0 {
                // Saturated: too many responders; refine downward.
                last_saturated_p = Some(p);
                p /= 4.0;
                continue;
            }
            if empties == f {
                // Silent: p too low for the population (or tiny population).
                if p >= 0.99 {
                    estimates.push(0.0);
                    continue;
                }
                p = (p * 4.0).min(1.0);
                continue;
            }
            estimates.push(estimate_remaining_from_empties(empties, f, p.min(0.999)));
        }

        let estimate = if estimates.is_empty() {
            // Never found a usable operating point (pathological); report
            // the lower bound implied by the last frame that actually
            // saturated (not the once-more-divided probe value).
            f64::from(f) / last_saturated_p.unwrap_or(p).max(1e-12)
        } else {
            estimates.iter().sum::<f64>() / estimates.len() as f64
        };
        PreStepOutcome {
            estimate,
            slots_used,
            elapsed_us: slots_used as f64 * slot_us,
        }
    }
}

impl Default for PreStepEstimator {
    /// 32-slot measurement frames, 8 averaged rounds — ≈ 3 % accuracy for
    /// populations in the paper's range at a cost of a few hundred short
    /// slots.
    fn default() -> Self {
        PreStepEstimator::new(32, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::seeded_rng;

    #[test]
    fn schoute_values() {
        assert_eq!(schoute_backlog(0), 0.0);
        assert!((schoute_backlog(100) - 239.2).abs() < 1e-9);
    }

    #[test]
    fn estimates_within_tolerance() {
        let est = PreStepEstimator::new(32, 16);
        let config = SimConfig::default();
        for &n in &[100usize, 1_000, 10_000] {
            let mut errors = Vec::new();
            for seed in 0..8 {
                let mut rng = seeded_rng(seed);
                let out = est.estimate(n, &config, &mut rng);
                errors.push((out.estimate - n as f64).abs() / n as f64);
            }
            let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
            assert!(mean_err < 0.25, "n {n}: mean relative error {mean_err}");
        }
    }

    #[test]
    fn zero_population() {
        let est = PreStepEstimator::default();
        let out = est.estimate(0, &SimConfig::default(), &mut seeded_rng(1));
        assert_eq!(out.estimate, 0.0);
        assert!(out.slots_used > 0);
        assert!(out.elapsed_us > 0.0);
    }

    #[test]
    fn single_tag() {
        let est = PreStepEstimator::new(32, 8);
        let out = est.estimate(1, &SimConfig::default(), &mut seeded_rng(2));
        assert!(out.estimate < 10.0, "estimate {}", out.estimate);
    }

    #[test]
    fn cost_is_bounded() {
        let est = PreStepEstimator::new(32, 8);
        let out = est.estimate(1_000_000, &SimConfig::default(), &mut seeded_rng(3));
        assert!(out.slots_used <= 96 * 32);
        assert!(out.estimate > 100_000.0);
    }

    #[test]
    fn estimation_slots_cheaper_than_report_slots() {
        let config = SimConfig::default();
        let est = PreStepEstimator::default();
        let out = est.estimate(500, &config, &mut seeded_rng(4));
        let per_slot = out.elapsed_us / out.slots_used as f64;
        assert!(per_slot < config.timing().basic_slot_us());
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn zero_rounds_panics() {
        let _ = PreStepEstimator::new(32, 0);
    }
}
