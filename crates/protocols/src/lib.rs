//! Baseline anti-collision protocols — the comparison set of the paper's
//! evaluation (§VI) plus their ancestors.
//!
//! All of these treat collision slots as pure waste; they differ only in
//! how they steer tags apart:
//!
//! | Protocol | Class | Paper role |
//! |---|---|---|
//! | [`SlottedAloha`] | ALOHA, per-slot probability | §VII background; `1/(eT)` ceiling |
//! | [`FramedSlottedAloha`] | ALOHA, fixed frame | §VII background |
//! | [`Dfsa`] | ALOHA, dynamic frame (Cha-Kim \[6\]) | Table I/II baseline |
//! | [`Edfsa`] | ALOHA, capped frame + grouping (Lee-Joo-Lee \[5\]) | Table I/II baseline |
//! | [`Abs`] | tree, counter-based binary splitting (Myung-Lee \[12\]) | Table I/II baseline |
//! | [`Aqs`] | tree, query splitting (Myung-Lee \[12\]) | Table I/II baseline |
//! | [`QueryTree`] | tree, memoryless (Law-Lee-Siu \[28\]) | §VII background |
//!
//! The [`estimate`] module carries the frame-based tag-count estimators the
//! ALOHA protocols rely on, and the Kodialam-Nandagopal-style \[24\]
//! pre-step estimator SCAT can use to bootstrap its report probability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod estimate;
pub mod kn_estimator;
pub mod tree;

pub use aloha::{
    Crdsa, CrdsaConfig, Dfsa, DfsaConfig, Edfsa, EdfsaConfig, FramedSlottedAloha, Gen2Q,
    Gen2QConfig, InitialEstimate, SlottedAloha,
};
pub use estimate::{schoute_backlog, PreStepEstimator, PreStepOutcome};
pub use kn_estimator::{KnEstimator, KnMethod, KnOutcome};
pub use tree::{Abs, AbsSession, Aqs, AqsSession, QueryTree};
