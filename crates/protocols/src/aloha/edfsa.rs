//! Enhanced dynamic framed-slotted ALOHA (Lee-Joo-Lee [5]).
//!
//! DFSA wants frames as large as the backlog, which is impractical for the
//! tag counts the paper targets. EDFSA caps the frame at 256 slots and,
//! when the estimated backlog exceeds what one frame can serve efficiently,
//! splits the unread tags into `M` modulo groups and polls one group per
//! frame ("uses frames with limited frame size by restricting the number of
//! responding tags in a frame").
//!
//! The number-of-groups rule and the small-backlog frame-size ladder follow
//! the EDFSA paper: with a 256-slot frame the system efficiency is kept
//! near its maximum when at most ≈ 354 tags respond; below 354 the frame
//! size steps down through powers of two.

use crate::aloha::{frame::run_frame, InitialEstimate};
use crate::estimate::schoute_backlog;
use rand::rngs::StdRng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::TagId;

/// The largest backlog one 256-slot frame serves efficiently (EDFSA's
/// threshold for switching to modulo grouping).
pub const MAX_TAGS_PER_FRAME: u32 = 354;

/// Configuration of [`Edfsa`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdfsaConfig {
    /// Bootstrap for the backlog estimate.
    pub initial: InitialEstimate,
    /// Maximum frame size (the EDFSA paper uses 256).
    pub max_frame: u32,
}

impl Default for EdfsaConfig {
    fn default() -> Self {
        EdfsaConfig {
            initial: InitialEstimate::Exact,
            max_frame: 256,
        }
    }
}

/// Enhanced DFSA with capped frames and modulo grouping.
#[derive(Debug, Clone, Default)]
pub struct Edfsa {
    config: EdfsaConfig,
}

impl Edfsa {
    /// Creates EDFSA with the stock (256-slot, oracle-bootstrapped)
    /// configuration.
    #[must_use]
    pub fn new() -> Self {
        Edfsa::with_config(EdfsaConfig::default())
    }

    /// Creates EDFSA with an explicit configuration.
    #[must_use]
    pub fn with_config(config: EdfsaConfig) -> Self {
        Edfsa { config }
    }

    /// The EDFSA frame-size ladder for unrestricted (single-group) reading.
    fn frame_for_backlog(&self, backlog: f64) -> u32 {
        let n = backlog.max(1.0);
        let ladder: &[(f64, u32)] = &[(11.0, 8), (19.0, 16), (40.0, 32), (81.0, 64), (176.0, 128)];
        for &(limit, frame) in ladder {
            if n <= limit {
                return frame.min(self.config.max_frame.max(1));
            }
        }
        self.config.max_frame.max(1)
    }
}

impl AntiCollisionProtocol for Edfsa {
    fn name(&self) -> &str {
        "EDFSA"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let mut backlog = self.config.initial.resolve(tags.len());
        let mut group: u64 = 0;
        let mut slots: u64 = 0;

        while !active.is_empty() {
            let groups = if backlog > f64::from(MAX_TAGS_PER_FRAME) {
                (backlog / f64::from(MAX_TAGS_PER_FRAME)).ceil() as u64
            } else {
                1
            };
            let frame = if groups > 1 {
                self.config.max_frame.max(1)
            } else {
                self.frame_for_backlog(backlog)
            };

            if slots + u64::from(frame) > config.max_slots() {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: config.max_slots(),
                    identified: report.identified,
                    total: tags.len(),
                });
            }
            slots += u64::from(frame);

            // Restrict responders to the current modulo group. The split
            // uses the tag payload, which both sides can compute.
            let current = group % groups;
            let mut responders: Vec<TagId> = if groups == 1 {
                std::mem::take(&mut active)
            } else {
                let (in_group, rest): (Vec<_>, Vec<_>) = active
                    .drain(..)
                    .partition(|t| t.payload() % u128::from(groups) == u128::from(current));
                active = rest;
                in_group
            };
            let stats = run_frame(&mut responders, frame, config, rng, &mut report);
            active.append(&mut responders);
            group += 1;

            // Backlog update: this group's residue re-estimated from its
            // collisions; other groups' share assumed unchanged.
            let group_residue = schoute_backlog(stats.collision);
            if groups > 1 {
                backlog =
                    (backlog * (groups as f64 - 1.0) / groups as f64 + group_residue).max(1.0);
            } else {
                backlog = group_residue.max(if stats.collision == 0 { 0.0 } else { 1.0 });
            }
            if backlog < 1.0 && !active.is_empty() {
                backlog = 1.0;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags_small() {
        let tags = population::uniform(&mut seeded_rng(1), 200);
        let report = run_inventory(&Edfsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 200);
    }

    #[test]
    fn reads_all_tags_with_grouping() {
        // 3 000 tags → ~9 modulo groups of 256-slot frames.
        let tags = population::uniform(&mut seeded_rng(2), 3_000);
        let report = run_inventory(&Edfsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 3_000);
    }

    #[test]
    fn throughput_matches_paper_band() {
        // Paper Table I: EDFSA ranges 115.9–128.6 tags/s, slightly below
        // DFSA because of frame quantization.
        let agg = run_many(&Edfsa::new(), 5_000, 5, &SimConfig::default()).unwrap();
        assert!(
            (112.0..135.0).contains(&agg.throughput.mean),
            "throughput {}",
            agg.throughput.mean
        );
    }

    #[test]
    fn frame_ladder() {
        let e = Edfsa::new();
        assert_eq!(e.frame_for_backlog(5.0), 8);
        assert_eq!(e.frame_for_backlog(15.0), 16);
        assert_eq!(e.frame_for_backlog(30.0), 32);
        assert_eq!(e.frame_for_backlog(60.0), 64);
        assert_eq!(e.frame_for_backlog(150.0), 128);
        assert_eq!(e.frame_for_backlog(300.0), 256);
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(3), 600);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.1, 0.05, 0.0));
        let report = run_inventory(&Edfsa::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 600);
    }

    #[test]
    fn empty_population() {
        let report = run_inventory(&Edfsa::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
    }
}
