//! Dynamic framed-slotted ALOHA (Cha-Kim [6]) — the strongest ALOHA
//! baseline in the paper's Table I.
//!
//! "The dynamic framed slotted ALOHA (DFSA) introduces frames with dynamic
//! frame size. It is proved that the maximal reading throughput is achieved
//! when the frame size is equal to the number of unread tags." The unread
//! backlog after each frame is estimated from the collision count with
//! Schoute's factor (`≈ 2.39·c`, the fast estimate of [6]).

use crate::aloha::{frame::run_frame, InitialEstimate};
use crate::estimate::schoute_backlog;
use rand::rngs::StdRng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::TagId;

/// Configuration of [`Dfsa`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfsaConfig {
    /// Bootstrap for the first frame's size.
    pub initial: InitialEstimate,
    /// Hard cap on any frame size (0 disables the cap). DFSA proper is
    /// uncapped — the paper notes that is impractical, which is EDFSA's
    /// raison d'être.
    pub max_frame: u32,
}

impl Default for DfsaConfig {
    fn default() -> Self {
        DfsaConfig {
            initial: InitialEstimate::Exact,
            max_frame: 0,
        }
    }
}

/// Dynamic framed-slotted ALOHA.
///
/// # Example
///
/// ```
/// use rfid_protocols::Dfsa;
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 500);
/// let report = run_inventory(&Dfsa::new(), &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 500);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dfsa {
    config: DfsaConfig,
}

impl Dfsa {
    /// Creates DFSA with the default (oracle-bootstrapped, uncapped)
    /// configuration used for the paper's tables.
    #[must_use]
    pub fn new() -> Self {
        Dfsa::with_config(DfsaConfig::default())
    }

    /// Creates DFSA with an explicit configuration.
    #[must_use]
    pub fn with_config(config: DfsaConfig) -> Self {
        Dfsa { config }
    }

    fn clamp_frame(&self, desired: f64) -> u32 {
        let desired = desired.round().max(1.0) as u32;
        if self.config.max_frame == 0 {
            desired
        } else {
            desired.min(self.config.max_frame)
        }
    }
}

impl AntiCollisionProtocol for Dfsa {
    fn name(&self) -> &str {
        "DFSA"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let mut frame = self.clamp_frame(self.config.initial.resolve(tags.len()));
        let mut slots: u64 = 0;

        while !active.is_empty() {
            if slots + u64::from(frame) > config.max_slots() {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: config.max_slots(),
                    identified: report.identified,
                    total: tags.len(),
                });
            }
            slots += u64::from(frame);
            let stats = run_frame(&mut active, frame, config, rng, &mut report);
            // Next frame sized to the estimated unread backlog. A frame
            // with zero collisions but surviving tags (ack loss, or a
            // wildly small bootstrap that produced only empties) restarts
            // from the surviving count the reader cannot see — use a
            // minimal probe frame and let the estimate rebuild.
            let backlog = schoute_backlog(stats.collision);
            frame = self.clamp_frame(if backlog > 0.0 { backlog } else { 1.0 });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 1_000);
        let report = run_inventory(&Dfsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1_000);
    }

    #[test]
    fn throughput_matches_paper_band() {
        // Paper Table I: DFSA ranges 129.1–132.8 tags/s.
        let agg = run_many(&Dfsa::new(), 5_000, 5, &SimConfig::default()).unwrap();
        assert!(
            (125.0..135.0).contains(&agg.throughput.mean),
            "throughput {}",
            agg.throughput.mean
        );
    }

    #[test]
    fn slot_shape_matches_paper_table2() {
        // Paper Table II at N = 10 000: empty ≈ 10 076, singleton = 10 000,
        // collision ≈ 7 208, total ≈ 27 284 (≈ e·N).
        let agg = run_many(&Dfsa::new(), 10_000, 3, &SimConfig::default()).unwrap();
        assert!((agg.singleton_slots.mean - 10_000.0).abs() < 1.0);
        assert!(
            (agg.empty_slots.mean - 10_076.0).abs() < 600.0,
            "empty {}",
            agg.empty_slots.mean
        );
        assert!(
            (agg.collision_slots.mean - 7_208.0).abs() < 400.0,
            "collision {}",
            agg.collision_slots.mean
        );
        assert!(
            (agg.total_slots.mean - 27_284.0).abs() < 900.0,
            "total {}",
            agg.total_slots.mean
        );
    }

    #[test]
    fn capped_variant_still_completes() {
        let tags = population::uniform(&mut seeded_rng(2), 2_000);
        let proto = Dfsa::with_config(DfsaConfig {
            initial: InitialEstimate::Fixed(128),
            max_frame: 256,
        });
        let report = run_inventory(&proto, &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 2_000);
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(3), 400);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.15, 0.05, 0.0));
        let report = run_inventory(&Dfsa::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 400);
    }

    #[test]
    fn single_tag() {
        let tags = population::uniform(&mut seeded_rng(4), 1);
        let report = run_inventory(&Dfsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1);
        assert_eq!(report.slots.total(), 1);
    }
}
