//! Basic framed-slotted ALOHA with a fixed frame size (§VII: "slots are
//! grouped into frames with the same fixed frame size. Each unread tag
//! picks up a random slot within each frame to report").

use crate::aloha::frame::run_frame;
use rand::rngs::StdRng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::TagId;

/// Fixed-frame-size slotted ALOHA.
///
/// Works well only when the frame size is near the population size; the
/// paper cites exactly this brittleness as the motivation for DFSA ("it is
/// possible that the number of tags far exceeds the number of slots in a
/// frame so that the frame is full of collision"). Runs whose population
/// dwarfs the frame will hit [`SimError::ExceededMaxSlots`] — that *is* the
/// documented failure mode.
#[derive(Debug, Clone)]
pub struct FramedSlottedAloha {
    frame_size: u32,
    name: String,
}

impl FramedSlottedAloha {
    /// Creates the protocol with the given fixed frame size.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0`.
    #[must_use]
    pub fn new(frame_size: u32) -> Self {
        assert!(frame_size > 0, "frame_size must be positive");
        FramedSlottedAloha {
            frame_size,
            name: format!("FSA-{frame_size}"),
        }
    }

    /// The fixed frame size.
    #[must_use]
    pub fn frame_size(&self) -> u32 {
        self.frame_size
    }
}

impl AntiCollisionProtocol for FramedSlottedAloha {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let mut slots: u64 = 0;
        while !active.is_empty() {
            if slots + u64::from(self.frame_size) > config.max_slots() {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: config.max_slots(),
                    identified: report.identified,
                    total: tags.len(),
                });
            }
            slots += u64::from(self.frame_size);
            run_frame(&mut active, self.frame_size, config, rng, &mut report);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, seeded_rng};
    use rfid_types::population;

    #[test]
    fn reads_all_when_frame_matches_population() {
        let tags = population::uniform(&mut seeded_rng(1), 128);
        let proto = FramedSlottedAloha::new(128);
        let report = run_inventory(&proto, &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 128);
        assert_eq!(report.slots.total() % 128, 0);
    }

    #[test]
    fn overloaded_frame_fails_to_terminate() {
        // 5000 tags against a 16-slot frame: every slot collides, forever.
        let tags = population::uniform(&mut seeded_rng(2), 5_000);
        let proto = FramedSlottedAloha::new(16);
        let config = SimConfig::default().with_max_slots(10_000);
        let err = run_inventory(&proto, &tags, &config).unwrap_err();
        assert!(matches!(err, SimError::ExceededMaxSlots { .. }));
    }

    #[test]
    fn empty_population_finishes_immediately() {
        let proto = FramedSlottedAloha::new(8);
        let report = run_inventory(&proto, &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
    }

    #[test]
    fn name_includes_frame_size() {
        assert_eq!(FramedSlottedAloha::new(64).name(), "FSA-64");
        assert_eq!(FramedSlottedAloha::new(64).frame_size(), 64);
    }

    #[test]
    #[should_panic(expected = "frame_size must be positive")]
    fn zero_frame_panics() {
        let _ = FramedSlottedAloha::new(0);
    }
}
