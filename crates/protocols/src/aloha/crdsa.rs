//! CRDSA — Contention Resolution Diversity Slotted ALOHA (Casini, De
//! Gaudenzi, Herrero; the paper's reference [22] in §III-C).
//!
//! The other published system that extracts information from collision
//! slots: each terminal transmits its packet **twice** at two
//! randomly-selected slots of a MAC frame, each replica carrying a pointer
//! to its twin. The receiver decodes clean singletons, then *cancels* each
//! decoded packet's twin replica from its slot — possibly uncovering new
//! singletons — and iterates (successive interference cancellation, a
//! peeling process).
//!
//! Including it gives the evaluation a second collision-resolving baseline
//! between the classic ALOHA family and FCAT: CRDSA beats `1/(eT)` but
//! pays a 2× transmission cost per tag and caps out near 0.55 useful
//! slots/slot, below FCAT's `g(ω*) ≈ 0.59` with λ = 2.

use crate::aloha::InitialEstimate;
use rand::rngs::StdRng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::{SlotClass, TagId};

/// Configuration of [`Crdsa`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrdsaConfig {
    /// Bootstrap for the backlog estimate.
    pub initial: InitialEstimate,
    /// Target channel load (backlog / frame size). CRDSA-2's throughput
    /// peaks near `G ≈ 0.65`.
    pub target_load: f64,
    /// Number of replicas per tag per frame (the classic scheme uses 2).
    pub replicas: u32,
    /// Smallest frame the reader will schedule.
    pub min_frame: u32,
}

impl Default for CrdsaConfig {
    fn default() -> Self {
        CrdsaConfig {
            initial: InitialEstimate::Exact,
            target_load: 0.65,
            replicas: 2,
            min_frame: 8,
        }
    }
}

/// CRDSA with iterative interference cancellation.
///
/// # Example
///
/// ```
/// use rfid_protocols::Crdsa;
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 500);
/// let report = run_inventory(&Crdsa::new(), &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 500);
/// // Some IDs were recovered by cancelling replicas out of collisions.
/// assert!(report.resolved_from_collisions > 0);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Crdsa {
    config: CrdsaConfig,
}

impl Crdsa {
    /// Creates CRDSA with the stock configuration (2 replicas, load 0.65).
    #[must_use]
    pub fn new() -> Self {
        Crdsa::with_config(CrdsaConfig::default())
    }

    /// Creates CRDSA with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas < 2`, `target_load <= 0` or `min_frame == 0`.
    #[must_use]
    pub fn with_config(config: CrdsaConfig) -> Self {
        assert!(config.replicas >= 2, "replicas must be >= 2");
        assert!(
            config.target_load > 0.0 && config.target_load.is_finite(),
            "target_load must be positive"
        );
        assert!(config.min_frame > 0, "min_frame must be positive");
        Crdsa { config }
    }
}

impl AntiCollisionProtocol for Crdsa {
    fn name(&self) -> &str {
        "CRDSA"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let errors = config.errors().clone();
        let slot_us = config.timing().basic_slot_us();
        let mut backlog = self.config.initial.resolve(tags.len());
        let mut slots_used: u64 = 0;

        while !active.is_empty() {
            let frame = ((backlog.max(1.0) / self.config.target_load).ceil() as u32)
                .max(self.config.min_frame)
                .max(self.config.replicas);
            if slots_used + u64::from(frame) > config.max_slots() {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: config.max_slots(),
                    identified: report.identified,
                    total: tags.len(),
                });
            }
            slots_used += u64::from(frame);

            // Placement: each tag picks `replicas` distinct slots.
            let l = frame as usize;
            let mut occupancy: Vec<Vec<usize>> = vec![Vec::new(); l];
            let mut placements: Vec<Vec<usize>> = Vec::with_capacity(active.len());
            for (tag_idx, _) in active.iter().enumerate() {
                let picks =
                    rand::seq::index::sample(rng, l, self.config.replicas as usize).into_vec();
                for &slot in &picks {
                    occupancy[slot].push(tag_idx);
                }
                placements.push(picks);
            }

            // Physical slot classes (pre-cancellation) and corruption.
            let mut corrupted = vec![false; l];
            for (slot, occ) in occupancy.iter().enumerate() {
                let class = match occ.len() {
                    0 => SlotClass::Empty,
                    1 => SlotClass::Singleton,
                    _ => SlotClass::Collision,
                };
                let class = if !occ.is_empty() && errors.sample_report_corrupted(rng) {
                    corrupted[slot] = true;
                    SlotClass::Collision
                } else {
                    class
                };
                report.record_slot(class, slot_us);
            }

            // Iterative interference cancellation (peeling).
            let mut remaining: Vec<usize> = occupancy.iter().map(Vec::len).collect();
            let mut cancelled = vec![false; active.len()];
            let mut decoded: Vec<(usize, bool)> = Vec::new(); // (tag, via_cancellation)
            let mut work: Vec<usize> = (0..l).filter(|&s| remaining[s] == 1).collect();
            let mut initial_singleton = vec![false; active.len()];
            for &slot in &work {
                if occupancy[slot].len() == 1 && !corrupted[slot] {
                    initial_singleton[occupancy[slot][0]] = true;
                }
            }
            while let Some(slot) = work.pop() {
                if remaining[slot] != 1 || corrupted[slot] {
                    continue;
                }
                let Some(&tag_idx) = occupancy[slot].iter().find(|&&t| !cancelled[t]) else {
                    continue;
                };
                cancelled[tag_idx] = true;
                decoded.push((tag_idx, !initial_singleton[tag_idx]));
                // Remove every replica of the decoded tag.
                for &replica_slot in &placements[tag_idx] {
                    remaining[replica_slot] -= 1;
                    if remaining[replica_slot] == 1 && !corrupted[replica_slot] {
                        work.push(replica_slot);
                    }
                }
            }

            // Acknowledge decoded tags (one ack burst after the frame).
            let mut keep = vec![true; active.len()];
            for (tag_idx, via_cancellation) in decoded {
                let tag = active[tag_idx];
                if via_cancellation {
                    report.record_resolved_from_collision(tag);
                } else {
                    report.record_identified(tag);
                }
                if !errors.sample_ack_lost(rng) {
                    keep[tag_idx] = false;
                }
            }
            let mut write = 0;
            for read in 0..active.len() {
                if keep[read] {
                    active[write] = active[read];
                    write += 1;
                }
            }
            let decoded_count = active.len() - write;
            active.truncate(write);

            // Backlog: decoded tags leave; a fully stuck frame (loops)
            // keeps the estimate, which forces a fresh random placement.
            backlog =
                (backlog - decoded_count as f64).max(if active.is_empty() { 0.0 } else { 1.0 });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 1_000);
        let report = run_inventory(&Crdsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1_000);
        assert!(report.resolved_from_collisions > 100);
    }

    #[test]
    fn beats_plain_aloha_but_not_fcat_band() {
        // CRDSA-2 peak ~0.53-0.55 decoded/slot → ~190 tags/s on I-Code
        // timing; above DFSA's ~131, below FCAT-2's ~197 once its 2×
        // transmission redundancy and load backoff are paid.
        let agg = run_many(&Crdsa::new(), 5_000, 5, &SimConfig::default()).unwrap();
        let aloha = rfid_analysis::bounds::aloha_throughput_bound(SimConfig::default().timing());
        assert!(
            agg.throughput.mean > aloha,
            "CRDSA {} <= ALOHA bound {aloha}",
            agg.throughput.mean
        );
        assert!(
            agg.throughput.mean < 215.0,
            "CRDSA {} implausibly high",
            agg.throughput.mean
        );
    }

    #[test]
    fn empty_and_single_populations() {
        let report = run_inventory(&Crdsa::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
        let tags = population::uniform(&mut seeded_rng(2), 1);
        let report = run_inventory(&Crdsa::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1);
    }

    #[test]
    fn two_tags_same_slots_eventually_resolve() {
        // Degenerate loops (both tags picking the same two slots) must be
        // broken by re-randomization in later frames.
        let tags = population::uniform(&mut seeded_rng(3), 2);
        let cfg = CrdsaConfig {
            min_frame: 2,
            ..CrdsaConfig::default()
        };
        let report = run_inventory(&Crdsa::with_config(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 2);
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(4), 300);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.15, 0.1, 0.0));
        let report = run_inventory(&Crdsa::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 300);
    }

    #[test]
    fn three_replica_variant_works() {
        let tags = population::uniform(&mut seeded_rng(5), 400);
        let cfg = CrdsaConfig {
            replicas: 3,
            target_load: 0.8,
            ..CrdsaConfig::default()
        };
        let report = run_inventory(&Crdsa::with_config(cfg), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 400);
    }

    #[test]
    #[should_panic(expected = "replicas must be >= 2")]
    fn one_replica_panics() {
        let _ = Crdsa::with_config(CrdsaConfig {
            replicas: 1,
            ..CrdsaConfig::default()
        });
    }
}
