//! Per-slot probabilistic ALOHA (§VII: "the reader sends out a contention
//! probability at the beginning of each slot and each unread tag [replies]
//! with this probability").

use crate::aloha::InitialEstimate;
use rand::rngs::StdRng;
use rfid_sim::sampling::{pick_distinct_indices, sample_binomial};
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::{SlotClass, TagId};

/// Slotted ALOHA with a per-slot contention probability `p = 1/N̂`, the
/// λ = 1 special case of the collision-aware probability rule: it maximizes
/// the singleton probability at `36.8 %` and tops out at `1/(eT)`.
///
/// # Example
///
/// ```
/// use rfid_protocols::SlottedAloha;
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 200);
/// let report = run_inventory(&SlottedAloha::new(), &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 200);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlottedAloha {
    initial: InitialEstimate,
}

impl SlottedAloha {
    /// Creates the protocol with an oracle initial population estimate.
    #[must_use]
    pub fn new() -> Self {
        SlottedAloha {
            initial: InitialEstimate::Exact,
        }
    }

    /// Creates the protocol with the given bootstrap estimate.
    #[must_use]
    pub fn with_initial_estimate(initial: InitialEstimate) -> Self {
        SlottedAloha { initial }
    }
}

impl AntiCollisionProtocol for SlottedAloha {
    fn name(&self) -> &str {
        "SlottedALOHA"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let slot_us = config.timing().basic_slot_us();
        let errors = config.errors().clone();

        // Reader-side backlog estimate, maintained with Rivest's
        // pseudo-Bayesian broadcast-control updates: −1 on an empty slot,
        // −1 departure on a success, +1/(e−2) on a collision. At the
        // optimal operating point the expected drift matches the true
        // backlog's, so the estimate self-corrects from any bootstrap.
        const COLLISION_INCREMENT: f64 = 1.0 / (std::f64::consts::E - 2.0);
        let mut backlog = self.initial.resolve(tags.len());
        let mut slots: u64 = 0;

        while !active.is_empty() {
            if slots >= config.max_slots() {
                return Err(SimError::ExceededMaxSlots {
                    max_slots: config.max_slots(),
                    identified: report.identified,
                    total: tags.len(),
                });
            }
            slots += 1;

            let p = (1.0 / backlog.max(1.0)).min(1.0);
            let k = sample_binomial(active.len(), p, rng);
            match k {
                0 => {
                    report.record_slot(SlotClass::Empty, slot_us);
                    backlog = (backlog - 1.0).max(1.0);
                }
                1 => {
                    if errors.sample_report_corrupted(rng) {
                        report.record_slot(SlotClass::Collision, slot_us);
                        backlog += COLLISION_INCREMENT;
                    } else {
                        report.record_slot(SlotClass::Singleton, slot_us);
                        let idx = pick_distinct_indices(active.len(), 1, rng)[0];
                        report.record_identified(active[idx]);
                        if !errors.sample_ack_lost(rng) {
                            active.swap_remove(idx);
                            backlog = (backlog - 1.0).max(0.0);
                        }
                    }
                }
                _ => {
                    report.record_slot(SlotClass::Collision, slot_us);
                    backlog = (backlog + COLLISION_INCREMENT).max(2.0);
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 300);
        let report = run_inventory(&SlottedAloha::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 300);
        assert_eq!(report.resolved_from_collisions, 0);
    }

    #[test]
    fn empty_population_zero_slots() {
        let report = run_inventory(&SlottedAloha::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 0);
        assert_eq!(report.slots.total(), 0);
    }

    #[test]
    fn single_tag_read_quickly() {
        let tags = population::uniform(&mut seeded_rng(2), 1);
        let report = run_inventory(&SlottedAloha::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1);
        assert!(report.slots.total() < 20);
    }

    #[test]
    fn throughput_near_aloha_bound() {
        // Optimal slotted ALOHA ≈ 1/(e·T) ≈ 131 tags/s on I-Code timing.
        let agg = run_many(&SlottedAloha::new(), 2_000, 5, &SimConfig::default()).unwrap();
        let bound = rfid_analysis::bounds::aloha_throughput_bound(SimConfig::default().timing());
        assert!(
            agg.throughput.mean > 0.9 * bound && agg.throughput.mean <= bound * 1.02,
            "throughput {} vs bound {bound}",
            agg.throughput.mean
        );
    }

    #[test]
    fn slot_mix_matches_theory() {
        // At p = 1/N: 36.8% empty, 36.8% singleton, 26.4% collision (§I).
        let agg = run_many(&SlottedAloha::new(), 5_000, 3, &SimConfig::default()).unwrap();
        let total = agg.total_slots.mean;
        assert!((agg.singleton_slots.mean / total - 0.368).abs() < 0.02);
        assert!((agg.empty_slots.mean / total - 0.368).abs() < 0.03);
        assert!((agg.collision_slots.mean / total - 0.264).abs() < 0.03);
    }

    #[test]
    fn survives_ack_loss_and_corruption() {
        let tags = population::uniform(&mut seeded_rng(3), 150);
        let config = SimConfig::default()
            .with_errors(ErrorModel::new(0.2, 0.1, 0.0))
            .with_seed(9);
        let report = run_inventory(&SlottedAloha::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 150);
        assert!(report.duplicates_discarded > 0 || report.slots.collision > 0);
    }

    #[test]
    fn bad_bootstrap_still_completes() {
        let tags = population::uniform(&mut seeded_rng(4), 200);
        let proto = SlottedAloha::with_initial_estimate(InitialEstimate::Fixed(1));
        let report = run_inventory(&proto, &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 200);
    }

    #[test]
    fn max_slots_enforced() {
        let tags = population::uniform(&mut seeded_rng(5), 1_000);
        let config = SimConfig::default().with_max_slots(10);
        let err = run_inventory(&SlottedAloha::new(), &tags, &config).unwrap_err();
        assert!(matches!(err, SimError::ExceededMaxSlots { .. }));
    }
}
