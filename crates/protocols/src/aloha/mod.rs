//! ALOHA-family baselines (§VII, first class).
//!
//! All of them read a tag only from singleton slots; collision slots are
//! pure loss, which caps their throughput at `1/(eT)` (Roberts \[11\]).

mod crdsa;
mod dfsa;
mod edfsa;
mod framed;
mod gen2q;
mod slotted;

pub use crdsa::{Crdsa, CrdsaConfig};
pub use dfsa::{Dfsa, DfsaConfig};
pub use edfsa::{Edfsa, EdfsaConfig};
pub use framed::FramedSlottedAloha;
pub use gen2q::{Gen2Q, Gen2QConfig};
pub use slotted::SlottedAloha;

/// How an ALOHA reader bootstraps its knowledge of the population size.
///
/// The paper lets every baseline track the backlog well (their DFSA sits
/// at the `1/(eT)` ceiling), so experiments default to [`Exact`].
///
/// [`Exact`]: InitialEstimate::Exact
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum InitialEstimate {
    /// The reader is told the true initial population (oracle start).
    #[default]
    Exact,
    /// The reader starts from a fixed guess and adapts from observations.
    Fixed(u32),
}

impl InitialEstimate {
    /// Resolves the starting estimate for a population of `n` tags.
    #[must_use]
    pub fn resolve(self, n: usize) -> f64 {
        match self {
            InitialEstimate::Exact => n as f64,
            InitialEstimate::Fixed(guess) => f64::from(guess.max(1)),
        }
    }
}

pub(crate) mod frame {
    //! Shared frame execution for the framed ALOHA variants.

    use rand::rngs::StdRng;
    use rand::Rng;
    use rfid_sim::{InventoryReport, SimConfig};
    use rfid_types::{SlotClass, TagId};

    /// Outcome counts of one frame.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct FrameStats {
        /// Empty slots observed.
        pub empty: u32,
        /// Readable singleton slots observed.
        pub singleton: u32,
        /// Collision slots observed (includes corrupted singletons, which
        /// the reader cannot distinguish from collisions).
        pub collision: u32,
        /// Tags identified and successfully acknowledged.
        pub identified: u32,
    }

    /// Runs one framed-ALOHA frame: every tag in `active` picks one slot
    /// uniformly; singletons are identified and (ack permitting) removed
    /// from `active`.
    ///
    /// Slot airtime and classes are recorded into `report`.
    pub fn run_frame(
        active: &mut Vec<TagId>,
        frame_size: u32,
        config: &SimConfig,
        rng: &mut StdRng,
        report: &mut InventoryReport,
    ) -> FrameStats {
        let l = frame_size as usize;
        debug_assert!(l > 0);
        let slot_us = config.timing().basic_slot_us();
        let errors = config.errors().clone();

        // Occupancy: count per slot and the index (into `active`) of the
        // first occupant, which is the decodable tag when count == 1.
        let mut counts = vec![0u32; l];
        let mut first = vec![usize::MAX; l];
        let mut choice = vec![0usize; active.len()];
        for (idx, slot) in choice.iter_mut().enumerate() {
            *slot = rng.gen_range(0..l);
            counts[*slot] += 1;
            if first[*slot] == usize::MAX {
                first[*slot] = idx;
            }
        }

        let mut stats = FrameStats::default();
        let mut acked = vec![false; active.len()];
        for slot in 0..l {
            match counts[slot] {
                0 => {
                    stats.empty += 1;
                    report.record_slot(SlotClass::Empty, slot_us);
                }
                1 => {
                    if errors.sample_report_corrupted(rng) {
                        // Reader sees a CRC failure — indistinguishable
                        // from a collision; the tag is not acknowledged.
                        stats.collision += 1;
                        report.record_slot(SlotClass::Collision, slot_us);
                    } else {
                        stats.singleton += 1;
                        report.record_slot(SlotClass::Singleton, slot_us);
                        let idx = first[slot];
                        report.record_identified(active[idx]);
                        if !errors.sample_ack_lost(rng) {
                            acked[idx] = true;
                            stats.identified += 1;
                        }
                    }
                }
                _ => {
                    stats.collision += 1;
                    report.record_slot(SlotClass::Collision, slot_us);
                }
            }
        }

        // Compact the active set, preserving relative order (not required,
        // but keeps runs reproducible independent of removal pattern).
        let mut write = 0usize;
        for read in 0..active.len() {
            if !acked[read] {
                active[write] = active[read];
                write += 1;
            }
        }
        active.truncate(write);
        stats
    }
}
