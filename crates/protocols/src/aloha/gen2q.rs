//! The EPCglobal Class-1 Gen-2 "Q algorithm" (ISO 18000-6C) — the
//! industrial-standard anti-collision scheme the paper's §VII alludes to
//! with "contention-based time-slotted protocols have become the
//! industrial standards".
//!
//! The reader maintains a floating-point slot-count exponent `Q_fp`; each
//! inventory round opens `2^Q` slots and every unread tag draws a uniform
//! counter in `[0, 2^Q)`. After observing a slot the reader nudges the
//! exponent — up by `C` on a collision, down by `C` on an idle slot,
//! unchanged on a success — re-issuing the round with the new `Q` whenever
//! the rounded exponent changes. The standard recommends `0.1 ≤ C ≤ 0.5`.
//!
//! Like every member of the ALOHA family it discards collision slots, so
//! its throughput also converges to the `1/(eT)` ceiling at best.

use rand::rngs::StdRng;
use rand::Rng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::{SlotClass, TagId};

/// Configuration of [`Gen2Q`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gen2QConfig {
    /// Initial exponent `Q` (the standard's default is 4).
    pub initial_q: f64,
    /// Adjustment constant `C` (standard: 0.1–0.5).
    pub c: f64,
    /// Largest exponent allowed (standard: 15).
    pub max_q: f64,
}

impl Default for Gen2QConfig {
    fn default() -> Self {
        Gen2QConfig {
            initial_q: 4.0,
            c: 0.3,
            max_q: 15.0,
        }
    }
}

/// The Gen-2 Q algorithm.
///
/// # Example
///
/// ```
/// use rfid_protocols::Gen2Q;
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 300);
/// let report = run_inventory(&Gen2Q::new(), &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 300);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gen2Q {
    config: Gen2QConfig,
}

impl Gen2Q {
    /// Creates the protocol with the standard's default parameters.
    #[must_use]
    pub fn new() -> Self {
        Gen2Q::with_config(Gen2QConfig::default())
    }

    /// Creates the protocol with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `(0, 1]` or the exponents are out of
    /// `[0, 15]` order.
    #[must_use]
    pub fn with_config(config: Gen2QConfig) -> Self {
        assert!(config.c > 0.0 && config.c <= 1.0, "C must be in (0, 1]");
        assert!(
            (0.0..=15.0).contains(&config.initial_q) && config.max_q <= 15.0,
            "Q exponents must be within [0, 15]"
        );
        assert!(
            config.initial_q <= config.max_q,
            "initial_q must be <= max_q"
        );
        Gen2Q { config }
    }
}

/// Removes the acknowledged tags from the active set in one pass.
fn remove_read(active: &mut Vec<TagId>, read: &[TagId]) {
    if read.is_empty() {
        return;
    }
    let read: std::collections::HashSet<TagId> = read.iter().copied().collect();
    active.retain(|t| !read.contains(t));
}

impl AntiCollisionProtocol for Gen2Q {
    fn name(&self) -> &str {
        "Gen2-Q"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let mut report = InventoryReport::new(self.name());
        let mut active: Vec<TagId> = tags.to_vec();
        let slot_us = config.timing().basic_slot_us();
        let errors = config.errors().clone();
        let mut q_fp = self.config.initial_q;
        let mut slots_used: u64 = 0;

        'rounds: while !active.is_empty() {
            let q = q_fp.round().clamp(0.0, self.config.max_q) as u32;
            let slots = 1u64 << q;
            // Tags draw their slot counters for this round; bucketing them
            // by counter keeps each slot O(responders) instead of scanning
            // every live counter.
            let mut buckets: Vec<Vec<TagId>> = vec![Vec::new(); slots as usize];
            for &tag in &active {
                buckets[rng.gen_range(0..slots) as usize].push(tag);
            }
            let mut read_this_round: Vec<TagId> = Vec::new();

            let mut slot = 0u64;
            while slot < slots {
                if slots_used >= config.max_slots() {
                    return Err(SimError::ExceededMaxSlots {
                        max_slots: config.max_slots(),
                        identified: report.identified,
                        total: tags.len(),
                    });
                }
                slots_used += 1;

                let responders = &mut buckets[slot as usize];
                let q_before = q_fp;
                match responders.len() {
                    0 => {
                        report.record_slot(SlotClass::Empty, slot_us);
                        q_fp = (q_fp - self.config.c).max(0.0);
                    }
                    1 => {
                        if errors.sample_report_corrupted(rng) {
                            report.record_slot(SlotClass::Collision, slot_us);
                            q_fp = (q_fp + self.config.c).min(self.config.max_q);
                        } else {
                            report.record_slot(SlotClass::Singleton, slot_us);
                            let tag = responders[0];
                            report.record_identified(tag);
                            if !errors.sample_ack_lost(rng) {
                                read_this_round.push(tag);
                                if read_this_round.len() == active.len() {
                                    break 'rounds;
                                }
                                slot += 1;
                                continue;
                            }
                        }
                    }
                    _ => {
                        report.record_slot(SlotClass::Collision, slot_us);
                        q_fp = (q_fp + self.config.c).min(self.config.max_q);
                    }
                }
                // The standard restarts the round when round(Q) changes.
                if q_fp.round() != q_before.round() {
                    remove_read(&mut active, &read_this_round);
                    continue 'rounds;
                }
                slot += 1;
            }
            remove_read(&mut active, &read_this_round);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 800);
        let report = run_inventory(&Gen2Q::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 800);
        assert_eq!(report.resolved_from_collisions, 0);
    }

    #[test]
    fn adapts_from_small_q_to_large_population() {
        // Q starts at 4 (16 slots) against 5 000 tags; the C updates must
        // walk it up without the round counter thrashing forever.
        let tags = population::uniform(&mut seeded_rng(2), 5_000);
        let report = run_inventory(&Gen2Q::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 5_000);
    }

    #[test]
    fn throughput_within_aloha_family_band() {
        let agg = run_many(&Gen2Q::new(), 2_000, 5, &SimConfig::default()).unwrap();
        let bound = rfid_analysis::bounds::aloha_throughput_bound(SimConfig::default().timing());
        assert!(
            agg.throughput.mean <= bound * 1.02,
            "Gen2-Q {} above ALOHA ceiling {bound}",
            agg.throughput.mean
        );
        assert!(
            agg.throughput.mean > 0.72 * bound,
            "Gen2-Q {} implausibly low vs {bound}",
            agg.throughput.mean
        );
    }

    #[test]
    fn empty_and_single() {
        let report = run_inventory(&Gen2Q::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
        let tags = population::uniform(&mut seeded_rng(3), 1);
        let report = run_inventory(&Gen2Q::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 1);
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(4), 200);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.2, 0.1, 0.0));
        let report = run_inventory(&Gen2Q::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 200);
    }

    #[test]
    fn aggressive_c_still_converges() {
        let tags = population::uniform(&mut seeded_rng(5), 500);
        let proto = Gen2Q::with_config(Gen2QConfig {
            c: 0.5,
            ..Gen2QConfig::default()
        });
        let report = run_inventory(&proto, &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 500);
    }

    #[test]
    #[should_panic(expected = "C must be in (0, 1]")]
    fn zero_c_panics() {
        let _ = Gen2Q::with_config(Gen2QConfig {
            c: 0.0,
            ..Gen2QConfig::default()
        });
    }
}
