//! Kodialam-Nandagopal estimation schemes (MobiCom'06; the paper's
//! reference \[24\], cited both as SCAT's pre-step — "Its value can be
//! estimated to an arbitrary accuracy \[24\]" — and as the inspiration for
//! FCAT's embedded estimator in §V-C).
//!
//! The reader runs short *estimation frames*: every tag joins a frame with
//! persistence probability `p` and, if it joins, picks exactly **one** of
//! the `f` slots uniformly (unlike FCAT, where a tag fires in every slot
//! independently — the difference §V-C points out). With load
//! `ρ = p·n/f`, slot occupancies are asymptotically Poisson:
//!
//! ```text
//! empty fraction      t₀(ρ) = e^{−ρ}
//! singleton fraction  t₁(ρ) = ρ·e^{−ρ}
//! collision fraction  t_c(ρ) = 1 − (1+ρ)·e^{−ρ}
//! ```
//!
//! * **Zero Estimator (ZE)** inverts `t₀`: `n̂ = (f/p)·ln(f/n₀)`.
//! * **Collision Estimator (CE)** inverts the monotone `t_c` numerically.
//! * **Unified (UPE-style)** combines both frame measurements weighted by
//!   their asymptotic variances, adapts `p` toward the informative load
//!   region, and repeats frames until a target coefficient of variation is
//!   met — the "arbitrary accuracy" dial.

use rand::rngs::StdRng;
use rand::Rng;
use rfid_sim::sampling::sample_binomial;
use rfid_sim::SimConfig;

/// Which statistic(s) the estimator inverts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KnMethod {
    /// Zero (empty-count) estimator.
    Zero,
    /// Collision-count estimator.
    Collision,
    /// Variance-weighted combination of both.
    #[default]
    Unified,
}

/// One frame's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnFrame {
    /// Empty slots.
    pub empty: u32,
    /// Singleton slots.
    pub singleton: u32,
    /// Collision slots.
    pub collision: u32,
}

/// Outcome of a full estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KnOutcome {
    /// The population estimate.
    pub estimate: f64,
    /// Estimation frames used.
    pub frames: u32,
    /// Total estimation slots used.
    pub slots_used: u64,
    /// Air time consumed (µs); estimation slots are short energy-detect
    /// bursts, charged at one guard plus one ack length.
    pub elapsed_us: f64,
}

/// Zero Estimator: inverts `E[n₀] = f·e^{−pn/f}`.
///
/// Clamps the degenerate all-empty / none-empty frames to half-slot
/// resolution so the caller always gets a finite value.
///
/// # Panics
///
/// Panics if `frame_size == 0`, `empties > frame_size`, or `p ∉ (0, 1]`.
#[must_use]
pub fn zero_estimate(empties: u32, frame_size: u32, p: f64) -> f64 {
    assert!(frame_size > 0, "frame_size must be positive");
    assert!(empties <= frame_size, "empties exceed frame size");
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
    let f = f64::from(frame_size);
    let n0 = f64::from(empties).clamp(0.5, f - 0.5).min(f);
    (f / p) * (f / n0).ln()
}

/// Collision Estimator: inverts `E[n_c] = f·(1 − (1+ρ)e^{−ρ})` by bisection
/// on the monotone collision fraction.
///
/// # Panics
///
/// Panics if `frame_size == 0`, `collisions > frame_size`, or `p ∉ (0, 1]`.
#[must_use]
pub fn collision_estimate(collisions: u32, frame_size: u32, p: f64) -> f64 {
    assert!(frame_size > 0, "frame_size must be positive");
    assert!(collisions <= frame_size, "collisions exceed frame size");
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
    let f = f64::from(frame_size);
    let fraction = (f64::from(collisions).clamp(0.0, f - 0.5) / f).min(1.0 - 1e-12);
    let rho = invert_collision_fraction(fraction);
    rho * f / p
}

/// Solves `1 − (1+ρ)e^{−ρ} = fraction` for `ρ ≥ 0`.
fn invert_collision_fraction(fraction: f64) -> f64 {
    if fraction <= 0.0 {
        return 0.0;
    }
    let t_c = |rho: f64| 1.0 - (1.0 + rho) * (-rho).exp();
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while t_c(hi) < fraction {
        hi *= 2.0;
        if hi > 1e6 {
            return hi;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_c(mid) < fraction {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Asymptotic variance factors of the two estimators at load `ρ`
/// (δ-method over Poisson slot occupancies): lower is better. Used as
/// inverse weights by the unified combination.
#[must_use]
pub fn estimator_variances(rho: f64, frame_size: u32) -> (f64, f64) {
    let f = f64::from(frame_size);
    let q0 = (-rho).exp();
    // ZE: n̂ ∝ ln(f/n₀); V(n₀) ≈ f·q₀(1−q₀); dρ/dn₀ = −1/(f·q₀).
    let var_zero = (1.0 - q0) / (f * q0);
    // CE: V(n_c) ≈ f·t_c(1−t_c); dt_c/dρ = ρ·e^{−ρ}.
    let t_c = 1.0 - (1.0 + rho) * q0;
    let slope = (rho * q0).max(1e-9);
    let var_coll = t_c * (1.0 - t_c) / (f * slope * slope);
    (var_zero, var_coll)
}

/// The iterated estimator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KnEstimator {
    frame_size: u32,
    method: KnMethod,
    target_cv: f64,
    max_frames: u32,
}

impl KnEstimator {
    /// Creates an estimator.
    ///
    /// `target_cv` is the stop criterion: estimated coefficient of
    /// variation of the running average (e.g. 0.05 for ±5 %).
    ///
    /// # Panics
    ///
    /// Panics if `frame_size == 0`, `target_cv <= 0`, or `max_frames == 0`.
    #[must_use]
    pub fn new(frame_size: u32, method: KnMethod, target_cv: f64, max_frames: u32) -> Self {
        assert!(frame_size > 0, "frame_size must be positive");
        assert!(target_cv > 0.0, "target_cv must be positive");
        assert!(max_frames > 0, "max_frames must be positive");
        KnEstimator {
            frame_size,
            method,
            target_cv,
            max_frames,
        }
    }

    /// Simulates one estimation frame against a hidden population.
    #[must_use]
    pub fn simulate_frame(&self, actual: usize, p: f64, rng: &mut StdRng) -> KnFrame {
        let f = self.frame_size as usize;
        let joining = sample_binomial(actual, p, rng);
        let mut counts = vec![0u32; f];
        for _ in 0..joining {
            counts[rng.gen_range(0..f)] += 1;
        }
        let mut frame = KnFrame {
            empty: 0,
            singleton: 0,
            collision: 0,
        };
        for c in counts {
            match c {
                0 => frame.empty += 1,
                1 => frame.singleton += 1,
                _ => frame.collision += 1,
            }
        }
        frame
    }

    /// One-frame point estimate under the configured method.
    #[must_use]
    pub fn frame_estimate(&self, frame: &KnFrame, p: f64) -> f64 {
        let f = self.frame_size;
        match self.method {
            KnMethod::Zero => zero_estimate(frame.empty, f, p),
            KnMethod::Collision => collision_estimate(frame.collision, f, p),
            KnMethod::Unified => {
                let ze = zero_estimate(frame.empty, f, p);
                let ce = collision_estimate(frame.collision, f, p);
                let rho = (p * 0.5 * (ze + ce) / f64::from(f)).max(1e-6);
                let (vz, vc) = estimator_variances(rho, f);
                (ze / vz + ce / vc) / (1.0 / vz + 1.0 / vc)
            }
        }
    }

    /// Runs estimation frames until the target accuracy (or the frame cap)
    /// is reached, adapting the persistence probability toward the
    /// informative load region `ρ ≈ 1.6` after each frame.
    #[must_use]
    pub fn estimate(&self, actual: usize, config: &SimConfig, rng: &mut StdRng) -> KnOutcome {
        // Estimation slots carry only energy information.
        let slot_us = config.timing().guard_us() + config.timing().ack_us();
        let f = f64::from(self.frame_size);
        const TARGET_RHO: f64 = 1.6;

        let mut p: f64 = 1.0;
        let mut estimates: Vec<f64> = Vec::new();
        let mut frames = 0u32;
        while frames < self.max_frames {
            frames += 1;
            let frame = self.simulate_frame(actual, p, rng);
            if frame.empty == 0 {
                // Saturated: halve aggressively and do not trust the frame.
                p = (p / 8.0).max(1e-9);
                continue;
            }
            let estimate = self.frame_estimate(&frame, p);
            estimates.push(estimate);

            // Running statistics → stop when the mean's CV is small.
            let n = estimates.len() as f64;
            let mean = estimates.iter().sum::<f64>() / n;
            if estimates.len() >= 2 {
                let var = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n - 1.0);
                let cv_of_mean = (var / n).sqrt() / mean.max(1e-9);
                if cv_of_mean < self.target_cv {
                    break;
                }
            }
            // Steer the load toward the informative region.
            p = (TARGET_RHO * f / mean.max(1.0)).min(1.0);
        }

        let estimate = if estimates.is_empty() {
            // Every frame saturated even at minimal p: enormous population.
            f / p
        } else {
            estimates.iter().sum::<f64>() / estimates.len() as f64
        };
        let slots_used = u64::from(frames) * u64::from(self.frame_size);
        KnOutcome {
            estimate,
            frames,
            slots_used,
            elapsed_us: slots_used as f64 * slot_us,
        }
    }
}

impl Default for KnEstimator {
    /// 64-slot frames, unified method, ±5 % target, 64-frame cap.
    fn default() -> Self {
        KnEstimator::new(64, KnMethod::Unified, 0.05, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::seeded_rng;

    #[test]
    fn inversion_functions_are_consistent() {
        // t_c(ρ) then invert must return ρ.
        for rho in [0.1f64, 0.5, 1.0, 1.6, 3.0, 6.0] {
            let fraction = 1.0 - (1.0 + rho) * (-rho).exp();
            let back = invert_collision_fraction(fraction);
            assert!((back - rho).abs() < 1e-9, "rho {rho} -> {back}");
        }
        assert_eq!(invert_collision_fraction(0.0), 0.0);
    }

    #[test]
    fn point_estimators_unbiased_at_expectation() {
        // Feed expected counts; both estimators should return ≈ n.
        let (n, f, p) = (2_000.0f64, 64u32, 0.04f64);
        let rho = p * n / f64::from(f);
        let expected_empty = (f64::from(f) * (-rho).exp()).round() as u32;
        let expected_coll = (f64::from(f) * (1.0 - (1.0 + rho) * (-rho).exp())).round() as u32;
        let ze = zero_estimate(expected_empty, f, p);
        let ce = collision_estimate(expected_coll, f, p);
        assert!((ze - n).abs() / n < 0.10, "ZE {ze}");
        assert!((ce - n).abs() / n < 0.10, "CE {ce}");
    }

    #[test]
    fn unified_reaches_target_accuracy() {
        let estimator = KnEstimator::default();
        let config = SimConfig::default();
        for &n in &[500usize, 5_000, 50_000] {
            let mut errors = Vec::new();
            for seed in 0..6 {
                let mut rng = seeded_rng(1_000 + seed);
                let out = estimator.estimate(n, &config, &mut rng);
                errors.push((out.estimate - n as f64).abs() / n as f64);
                assert!(out.frames <= 64);
                assert!(out.slots_used == u64::from(out.frames) * 64);
            }
            let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
            assert!(mean_err < 0.10, "n {n}: mean error {mean_err}");
        }
    }

    #[test]
    fn methods_all_converge() {
        let config = SimConfig::default();
        for method in [KnMethod::Zero, KnMethod::Collision, KnMethod::Unified] {
            let estimator = KnEstimator::new(64, method, 0.05, 64);
            let mut rng = seeded_rng(7);
            let out = estimator.estimate(3_000, &config, &mut rng);
            let rel = (out.estimate - 3_000.0).abs() / 3_000.0;
            assert!(rel < 0.2, "{method:?}: estimate {} rel {rel}", out.estimate);
        }
    }

    #[test]
    fn tiny_population() {
        let estimator = KnEstimator::default();
        let mut rng = seeded_rng(9);
        let out = estimator.estimate(3, &SimConfig::default(), &mut rng);
        assert!(out.estimate < 30.0, "estimate {}", out.estimate);
    }

    #[test]
    fn variance_weights_favor_collision_at_high_load() {
        // At high load ZE's variance blows up (q₀ → 0); CE stays usable.
        let (vz_hi, vc_hi) = estimator_variances(4.0, 64);
        assert!(vz_hi > vc_hi, "ZE {vz_hi} vs CE {vc_hi} at rho=4");
        // At low load ZE is the better statistic.
        let (vz_lo, vc_lo) = estimator_variances(0.2, 64);
        assert!(vz_lo < vc_lo, "ZE {vz_lo} vs CE {vc_lo} at rho=0.2");
    }

    #[test]
    fn tighter_target_costs_more_frames() {
        let config = SimConfig::default();
        let loose = KnEstimator::new(64, KnMethod::Unified, 0.2, 256);
        let tight = KnEstimator::new(64, KnMethod::Unified, 0.02, 256);
        let mut frames_loose = 0u32;
        let mut frames_tight = 0u32;
        for seed in 0..5 {
            frames_loose += loose
                .estimate(10_000, &config, &mut seeded_rng(seed))
                .frames;
            frames_tight += tight
                .estimate(10_000, &config, &mut seeded_rng(seed))
                .frames;
        }
        assert!(
            frames_tight > frames_loose,
            "tight {frames_tight} !> loose {frames_loose}"
        );
    }

    #[test]
    #[should_panic(expected = "target_cv must be positive")]
    fn bad_target_panics() {
        let _ = KnEstimator::new(64, KnMethod::Unified, 0.0, 8);
    }
}
