//! Query-tree protocols: AQS (Myung-Lee [12]) and the memoryless query
//! tree (Law-Lee-Siu [28]).
//!
//! §VII: "Each query contains a prefix p₁..pᵢ ... Each tag whose ID
//! contains this prefix transmits its ID as a response. If multiple
//! responses collide, the reader will generate two new prefixes p₁..pᵢ0
//! and p₁..pᵢ1". Unlike the counter-based splitter, the split is
//! deterministic in the IDs, so performance depends on the ID distribution
//! (uniform IDs give the `1/(2.88T)` bound).
//!
//! AQS differs from the plain query tree in its starting queue: it begins
//! from `{0, 1}` in a cold round and from the previous round's leaf queries
//! in warm rounds (adaptive). The plain query tree always starts from the
//! empty prefix.

use rand::rngs::StdRng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::{SlotClass, TagId, PAYLOAD_BITS};
use std::collections::{BTreeMap, VecDeque};

/// A query prefix over the tag payload bits, MSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Prefix {
    bits: u128,
    len: u32,
}

impl Prefix {
    pub(crate) const EMPTY: Prefix = Prefix { bits: 0, len: 0 };

    pub(crate) fn child(self, bit: u8) -> Prefix {
        debug_assert!(self.len < PAYLOAD_BITS);
        Prefix {
            bits: (self.bits << 1) | u128::from(bit),
            len: self.len + 1,
        }
    }

    /// The one-bit-shorter parent query, or `None` at the root.
    pub(crate) fn parent(self) -> Option<Prefix> {
        (self.len > 0).then(|| Prefix {
            bits: self.bits >> 1,
            len: self.len - 1,
        })
    }

    /// The sibling query (same parent, last bit flipped), or `None` at the
    /// root.
    pub(crate) fn sibling(self) -> Option<Prefix> {
        (self.len > 0).then_some(Prefix {
            bits: self.bits ^ 1,
            len: self.len,
        })
    }

    /// Payload range `[lo, hi)` matched by this prefix.
    pub(crate) fn range(self) -> (u128, u128) {
        let shift = PAYLOAD_BITS - self.len;
        let lo = self.bits << shift;
        let hi = lo + (1u128 << shift);
        (lo, hi)
    }
}

/// Shared query-tree engine parameterized by the initial query queue.
/// Returns the report; when `leaves_out` is provided it collects the
/// queries that ended as singletons or empties (the leaf set AQS carries
/// into its next round).
pub(crate) fn run_query_tree(
    name: &str,
    initial: &[Prefix],
    tags: &[TagId],
    config: &SimConfig,
    rng: &mut StdRng,
    mut leaves_out: Option<&mut Vec<Prefix>>,
) -> Result<InventoryReport, SimError> {
    let mut report = InventoryReport::new(name);
    if tags.is_empty() {
        return Ok(report);
    }
    let slot_us = config.timing().basic_slot_us();
    let errors = config.errors().clone();

    // Active tags keyed by payload for O(log n) prefix-range queries.
    let mut active: BTreeMap<u128, TagId> = tags.iter().map(|&t| (t.payload(), t)).collect();
    if active.len() != tags.len() {
        return Err(SimError::InvalidParameter {
            message: "query-tree protocols require distinct tag payloads".to_owned(),
        });
    }

    let mut queue: VecDeque<Prefix> = initial.iter().copied().collect();
    let mut slots: u64 = 0;

    while let Some(prefix) = queue.pop_front() {
        if slots >= config.max_slots() {
            return Err(SimError::ExceededMaxSlots {
                max_slots: config.max_slots(),
                identified: report.identified,
                total: tags.len(),
            });
        }
        slots += 1;

        let (lo, hi) = prefix.range();
        let mut matches = active.range(lo..hi);
        let first = matches.next().map(|(&p, &t)| (p, t));
        let second = matches.next().is_some();

        match (first, second) {
            (None, _) => {
                report.record_slot(SlotClass::Empty, slot_us);
                if let Some(leaves) = leaves_out.as_deref_mut() {
                    leaves.push(prefix);
                }
            }
            (Some((payload, tag)), false) => {
                if errors.sample_report_corrupted(rng) {
                    // Indistinguishable from a collision: split (or repeat
                    // when the prefix cannot grow).
                    report.record_slot(SlotClass::Collision, slot_us);
                    if prefix.len < PAYLOAD_BITS {
                        queue.push_back(prefix.child(0));
                        queue.push_back(prefix.child(1));
                    } else {
                        queue.push_back(prefix);
                    }
                } else {
                    report.record_slot(SlotClass::Singleton, slot_us);
                    report.record_identified(tag);
                    if errors.sample_ack_lost(rng) {
                        // Tag missed its acknowledgement and stays active;
                        // the reader re-issues the query.
                        queue.push_back(prefix);
                    } else {
                        active.remove(&payload);
                        if let Some(leaves) = leaves_out.as_deref_mut() {
                            leaves.push(prefix);
                        }
                    }
                }
            }
            (Some(_), true) => {
                report.record_slot(SlotClass::Collision, slot_us);
                debug_assert!(
                    prefix.len < PAYLOAD_BITS,
                    "distinct payloads cannot collide at full depth"
                );
                queue.push_back(prefix.child(0));
                queue.push_back(prefix.child(1));
            }
        }
    }
    Ok(report)
}

/// Adaptive Query Splitting (cold-start round: initial queue `{0, 1}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Aqs;

impl Aqs {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Aqs
    }
}

impl AntiCollisionProtocol for Aqs {
    fn name(&self) -> &str {
        "AQS"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let initial = [Prefix::EMPTY.child(0), Prefix::EMPTY.child(1)];
        run_query_tree(self.name(), &initial, tags, config, rng, None)
    }
}

/// Memoryless query tree (initial queue `{ε}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryTree;

impl QueryTree {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        QueryTree
    }
}

impl AntiCollisionProtocol for QueryTree {
    fn name(&self) -> &str {
        "QueryTree"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        run_query_tree(self.name(), &[Prefix::EMPTY], tags, config, rng, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn prefix_ranges() {
        let p0 = Prefix::EMPTY.child(0);
        let p1 = Prefix::EMPTY.child(1);
        assert_eq!(p0.range().0, 0);
        assert_eq!(p0.range().1, 1u128 << (PAYLOAD_BITS - 1));
        assert_eq!(p1.range().1, 1u128 << PAYLOAD_BITS);
        let p01 = p0.child(1);
        assert_eq!(p01.len, 2);
        assert_eq!(p01.range().0, 1u128 << (PAYLOAD_BITS - 2));
    }

    #[test]
    fn both_protocols_read_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 400);
        for proto in [&Aqs::new() as &dyn AntiCollisionProtocol, &QueryTree::new()] {
            let report = run_inventory(&proto, &tags, &SimConfig::default()).unwrap();
            assert_eq!(report.identified, 400, "{}", proto.name());
        }
    }

    #[test]
    fn sequential_ids_worst_case_still_complete() {
        // Long shared prefixes force deep exploration.
        let tags = population::sequential(0, 64);
        let report = run_inventory(&QueryTree::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 64);
        // Shared 74-bit prefix ≈ 74 extra collision levels.
        assert!(report.slots.collision > 70, "{}", report.slots.collision);
    }

    #[test]
    fn aqs_slot_mix_matches_paper_table2() {
        // Paper Table II, AQS at N = 10 000: empty 4 737, singleton 10 000,
        // collision 14 735. A cold-start query split over uniform IDs lands
        // within a few percent of those (the paper's AQS warm-start queue
        // carries a little extra query overhead; see EXPERIMENTS.md).
        let agg = run_many(&Aqs::new(), 10_000, 3, &SimConfig::default()).unwrap();
        assert!((agg.singleton_slots.mean - 10_000.0).abs() < 1.0);
        assert!(
            (4_100.0..5_200.0).contains(&agg.empty_slots.mean),
            "empty {}",
            agg.empty_slots.mean
        );
        assert!(
            (14_000.0..15_300.0).contains(&agg.collision_slots.mean),
            "collision {}",
            agg.collision_slots.mean
        );
    }

    #[test]
    fn aqs_throughput_matches_paper_band() {
        // Paper Table I: AQS at 117.9–121.3 tags/s.
        let agg = run_many(&Aqs::new(), 5_000, 5, &SimConfig::default()).unwrap();
        assert!(
            (117.0..125.0).contains(&agg.throughput.mean),
            "throughput {}",
            agg.throughput.mean
        );
    }

    #[test]
    fn query_tree_node_identity() {
        // Every collision spawns exactly two children.
        let tags = population::uniform(&mut seeded_rng(2), 513);
        let report = run_inventory(&QueryTree::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(
            report.slots.empty + report.slots.singleton,
            report.slots.collision + 1
        );
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(3), 200);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.2, 0.1, 0.0));
        for proto in [&Aqs::new() as &dyn AntiCollisionProtocol, &QueryTree::new()] {
            let report = run_inventory(&proto, &tags, &config).unwrap();
            assert_eq!(report.identified, 200, "{}", proto.name());
        }
    }

    #[test]
    fn empty_population() {
        let report = run_inventory(&Aqs::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
    }
}
