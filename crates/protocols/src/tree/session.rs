//! ABS with **progress preservation across rounds** — the "adaptive" in
//! Adaptive Binary Splitting (Myung-Lee [12]).
//!
//! Within one round ABS behaves like classic binary splitting (see
//! [`super::Abs`]). Its distinguishing feature only pays off under
//! *periodic* reading: at the end of a round the tags stand in the order
//! they were identified, and the next round starts from that order — each
//! staying tag gets its own counter slot, so an unchanged population reads
//! back in exactly `N` singleton slots (1 tag per slot, `1/T` throughput,
//! 2.88× better than a cold round). Tags that arrived since the last round
//! join at a random existing counter and are split off as usual.

use super::splitting::run_splitting;
use rand::rngs::StdRng;
use rand::Rng;
use rfid_sim::rounds::MultiRoundSession;
use rfid_sim::{InventoryReport, SimConfig, SimError};
use rfid_types::TagId;
use std::collections::{HashSet, VecDeque};

/// Session-state ABS: keeps the identification order between rounds.
///
/// # Example
///
/// ```
/// use rfid_protocols::AbsSession;
/// use rfid_sim::rounds::{run_rounds, ChurnModel};
/// use rfid_sim::SimConfig;
///
/// let mut session = AbsSession::new();
/// let report = run_rounds(&mut session, 200, 3, &ChurnModel::none(),
///                         &SimConfig::default())?;
/// // A static population re-reads in pure singletons from round 2 on.
/// assert_eq!(report.per_round[1].slots.singleton, 200);
/// assert_eq!(report.per_round[1].slots.collision, 0);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbsSession {
    /// Identification order of the previous round.
    previous_order: Vec<TagId>,
}

impl AbsSession {
    /// Creates a cold session (first round behaves like one-shot ABS).
    #[must_use]
    pub fn new() -> Self {
        AbsSession::default()
    }
}

impl MultiRoundSession for AbsSession {
    fn name(&self) -> &str {
        "ABS-session"
    }

    fn run_round(
        &mut self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        if tags.is_empty() {
            self.previous_order.clear();
            return Ok(InventoryReport::new(self.name()));
        }

        // Build the initial counter groups from the previous round's
        // order: each staying tag keeps the counter it ended with, a
        // departed tag's counter is left unclaimed (it will cost one idle
        // slot), and newcomers pick a random existing counter (Myung-Lee's
        // round transition).
        let current: HashSet<TagId> = tags.iter().copied().collect();
        let stack: VecDeque<Vec<TagId>> = if self.previous_order.is_empty() {
            VecDeque::from([tags.to_vec()])
        } else {
            let known: HashSet<TagId> = self.previous_order.iter().copied().collect();
            let mut groups: Vec<Vec<TagId>> = self
                .previous_order
                .iter()
                .map(|t| {
                    if current.contains(t) {
                        vec![*t]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            for &tag in tags {
                if !known.contains(&tag) {
                    let idx = rng.gen_range(0..groups.len());
                    groups[idx].push(tag);
                }
            }
            groups.into()
        };

        let mut order = Vec::with_capacity(tags.len());
        let report = run_splitting(self.name(), stack, tags.len(), config, rng, |tag| {
            order.push(tag);
        })?;
        self.previous_order = order;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::rounds::{run_rounds, ChurnModel};
    use rfid_sim::seeded_rng;
    use rfid_types::population;

    #[test]
    fn first_round_matches_cold_abs_scale() {
        let mut session = AbsSession::new();
        let report = run_rounds(
            &mut session,
            1_000,
            1,
            &ChurnModel::none(),
            &SimConfig::default().with_seed(1),
        )
        .unwrap();
        let slots = report.per_round[0].slots.total();
        assert!((2_500..3_300).contains(&slots), "cold round used {slots}");
    }

    #[test]
    fn static_population_rereads_in_pure_singletons() {
        let mut session = AbsSession::new();
        let report = run_rounds(
            &mut session,
            500,
            3,
            &ChurnModel::none(),
            &SimConfig::default().with_seed(2),
        )
        .unwrap();
        for round in 1..3 {
            let slots = &report.per_round[round].slots;
            assert_eq!(slots.singleton, 500, "round {round}");
            assert_eq!(slots.collision, 0, "round {round}");
            assert_eq!(slots.empty, 0, "round {round}");
        }
        // Warm rounds approach the physical 1-ID-per-slot ceiling.
        assert!(report.warm_throughput() > 350.0);
    }

    #[test]
    fn departures_cost_empty_slots() {
        let mut session = AbsSession::new();
        let report = run_rounds(
            &mut session,
            400,
            2,
            &ChurnModel::new(0.3, 0),
            &SimConfig::default().with_seed(3),
        )
        .unwrap();
        let second = &report.per_round[1].slots;
        assert!(
            second.empty > 50,
            "departed slots show as empties: {second:?}"
        );
        assert_eq!(second.collision, 0);
    }

    #[test]
    fn arrivals_cause_limited_splitting() {
        let mut session = AbsSession::new();
        let report = run_rounds(
            &mut session,
            400,
            2,
            &ChurnModel::new(0.0, 40),
            &SimConfig::default().with_seed(4),
        )
        .unwrap();
        let second = &report.per_round[1].slots;
        assert_eq!(report.population_per_round[1], 440);
        assert_eq!(report.per_round[1].identified, 440);
        // Only the ~40 joined slots collide, not the whole tree.
        assert!(second.collision < 150, "{second:?}");
    }

    #[test]
    fn round_after_emptying_is_trivial() {
        let mut session = AbsSession::new();
        let mut rng = seeded_rng(5);
        let tags = population::uniform(&mut rng, 50);
        let config = SimConfig::default();
        session.run_round(&tags, &config, &mut rng).unwrap();
        let report = session.run_round(&[], &config, &mut rng).unwrap();
        assert_eq!(report.identified, 0);
    }
}
