//! Adaptive Binary Splitting (Myung-Lee [12]) — counter-based random
//! binary tree splitting.
//!
//! §VII: "each tag has a counter initialized to 0. Upon receiving a query,
//! each tag that has a counter value 0 will respond. Once collision
//! happens ... each colliding tag draws a random binary number and adds it
//! to its counter. ... all other tags that do not transmit also increase
//! their counters by one; otherwise, they decrease their counters by one."
//!
//! Those counter dynamics are exactly a depth-first traversal of a random
//! binary tree, so the implementation keeps the tags grouped by counter
//! value on an explicit stack: popping the front group is the "decrement",
//! pushing split halves is the "increment". The maximal throughput of this
//! class is `1/(2.88T)` (Capetanakis [27]), and the paper's Table II slot
//! mix for ABS (≈ 0.44·N empty, N singleton, ≈ 1.44·N collision) emerges
//! from these dynamics.
//!
//! ABS proper adds *progress preservation* across successive inventory
//! rounds (it starts a new round from the previous round's leaf groups).
//! A first/cold round — which is what the paper's single-inventory
//! experiments measure — starts with every tag at counter 0.

use rand::rngs::StdRng;
use rand::Rng;
use rfid_sim::{AntiCollisionProtocol, InventoryReport, SimConfig, SimError};
use rfid_types::{SlotClass, TagId};
use std::collections::VecDeque;

/// Adaptive Binary Splitting (cold-start round).
///
/// # Example
///
/// ```
/// use rfid_protocols::Abs;
/// use rfid_sim::{run_inventory, SimConfig};
/// use rfid_types::population;
///
/// let tags = population::uniform(&mut rfid_sim::seeded_rng(1), 300);
/// let report = run_inventory(&Abs::new(), &tags, &SimConfig::default())?;
/// assert_eq!(report.identified, 300);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Abs;

impl Abs {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Abs
    }
}

/// Runs the counter-based splitting dynamics from an initial counter-group
/// stack until every group is drained, invoking `on_identified` for each
/// tag the reader successfully acknowledges (in identification order).
///
/// Shared by one-shot [`Abs`] (initial stack = one group holding all tags)
/// and the warm-start `AbsSession` (initial stack = the previous round's
/// counter assignment) so the two cannot drift apart.
pub(crate) fn run_splitting(
    name: &str,
    mut stack: VecDeque<Vec<TagId>>,
    total_tags: usize,
    config: &SimConfig,
    rng: &mut StdRng,
    mut on_identified: impl FnMut(TagId),
) -> Result<InventoryReport, SimError> {
    let mut report = InventoryReport::new(name);
    let slot_us = config.timing().basic_slot_us();
    let errors = config.errors().clone();
    let mut slots: u64 = 0;
    // Drained group buffers, recycled by later splits. The depth-first
    // walk keeps O(depth) groups live, so a handful of buffers serves the
    // whole round where the naive dynamics allocate two fresh vectors per
    // collision slot. Recycling never touches contents or draw order, so
    // reports are bit-identical to the allocating version.
    let mut spare: Vec<Vec<TagId>> = Vec::new();

    while let Some(mut group) = stack.pop_front() {
        if slots >= config.max_slots() {
            return Err(SimError::ExceededMaxSlots {
                max_slots: config.max_slots(),
                identified: report.identified,
                total: total_tags,
            });
        }
        slots += 1;

        let corrupted = group.len() == 1 && errors.sample_report_corrupted(rng);
        match group.len() {
            0 => report.record_slot(SlotClass::Empty, slot_us),
            1 if !corrupted => {
                report.record_slot(SlotClass::Singleton, slot_us);
                let tag = group[0];
                if report.record_identified(tag) {
                    on_identified(tag);
                }
                if errors.sample_ack_lost(rng) {
                    // Unacknowledged tag stays at counter 0: it merges
                    // into the next group to transmit.
                    match stack.front_mut() {
                        Some(front) => front.push(tag),
                        None => {
                            let mut singleton = spare.pop().unwrap_or_default();
                            singleton.push(tag);
                            stack.push_front(singleton);
                        }
                    }
                }
            }
            _ => {
                // Collision (or a corrupted singleton the reader cannot
                // tell apart): every involved tag draws a random bit.
                report.record_slot(SlotClass::Collision, slot_us);
                let mut zeros = spare.pop().unwrap_or_default();
                let mut ones = spare.pop().unwrap_or_default();
                for &tag in &group {
                    if rng.gen::<bool>() {
                        ones.push(tag);
                    } else {
                        zeros.push(tag);
                    }
                }
                stack.push_front(ones);
                stack.push_front(zeros);
            }
        }
        group.clear();
        spare.push(group);
    }
    Ok(report)
}

impl AntiCollisionProtocol for Abs {
    fn name(&self) -> &str {
        "ABS"
    }

    fn run(
        &self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        if tags.is_empty() {
            return Ok(InventoryReport::new(self.name()));
        }
        // Cold start: every tag at counter 0, one root group.
        let stack = VecDeque::from([tags.to_vec()]);
        run_splitting(self.name(), stack, tags.len(), config, rng, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::{run_inventory, run_many, seeded_rng, ErrorModel};
    use rfid_types::population;

    #[test]
    fn reads_all_tags() {
        let tags = population::uniform(&mut seeded_rng(1), 500);
        let report = run_inventory(&Abs::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.identified, 500);
    }

    #[test]
    fn empty_population() {
        let report = run_inventory(&Abs::new(), &[], &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 0);
    }

    #[test]
    fn single_tag_one_slot() {
        let tags = population::uniform(&mut seeded_rng(2), 1);
        let report = run_inventory(&Abs::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(report.slots.total(), 1);
        assert_eq!(report.slots.singleton, 1);
    }

    #[test]
    fn slot_mix_matches_paper_table2() {
        // Paper Table II, ABS at N = 10 000: empty 4 410, singleton 10 000,
        // collision 14 409, total 28 819 (2.88·N).
        let agg = run_many(&Abs::new(), 10_000, 3, &SimConfig::default()).unwrap();
        assert!((agg.singleton_slots.mean - 10_000.0).abs() < 1.0);
        assert!(
            (agg.empty_slots.mean - 4_410.0).abs() < 300.0,
            "empty {}",
            agg.empty_slots.mean
        );
        assert!(
            (agg.collision_slots.mean - 14_409.0).abs() < 400.0,
            "collision {}",
            agg.collision_slots.mean
        );
    }

    #[test]
    fn throughput_matches_paper_band() {
        // Paper Table I: ABS sits at 123.5–124.2 tags/s for every N.
        let agg = run_many(&Abs::new(), 5_000, 5, &SimConfig::default()).unwrap();
        assert!(
            (120.0..127.0).contains(&agg.throughput.mean),
            "throughput {}",
            agg.throughput.mean
        );
    }

    #[test]
    fn tree_slot_identity() {
        // In a binary splitting tree every slot is a node: collisions are
        // internal nodes with exactly two children, so
        // empty + singleton = collision + 1.
        let tags = population::uniform(&mut seeded_rng(3), 777);
        let report = run_inventory(&Abs::new(), &tags, &SimConfig::default()).unwrap();
        assert_eq!(
            report.slots.empty + report.slots.singleton,
            report.slots.collision + 1
        );
    }

    #[test]
    fn completes_under_channel_errors() {
        let tags = population::uniform(&mut seeded_rng(4), 300);
        let config = SimConfig::default().with_errors(ErrorModel::new(0.2, 0.1, 0.0));
        let report = run_inventory(&Abs::new(), &tags, &config).unwrap();
        assert_eq!(report.identified, 300);
        assert!(report.duplicates_discarded > 0);
    }
}
