//! Tree-based baselines (§VII, second class): the reading process is a
//! recursive splitting of the colliding set, bounded by `1/(2.88T)`.

mod aqs_session;
mod query;
mod session;
mod splitting;

pub use aqs_session::AqsSession;
pub use query::{Aqs, QueryTree};
pub use session::AbsSession;
pub use splitting::Abs;
