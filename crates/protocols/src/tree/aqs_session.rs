//! AQS with its adaptive cross-round queue — the "adaptive" in Adaptive
//! Query Splitting (Myung-Lee [12]).
//!
//! At the end of a round the query tree's *leaves* (queries that came back
//! singleton or empty) partition the ID space. AQS starts the next round
//! from exactly that leaf queue: a static population re-reads with one
//! query per leaf and no collisions at all; arrivals only split the leaves
//! they land in.

use super::query::{run_query_tree, Prefix};
use rand::rngs::StdRng;
use rfid_sim::rounds::MultiRoundSession;
use rfid_sim::{InventoryReport, SimConfig, SimError};
use rfid_types::TagId;

/// Session-state AQS: carries the leaf-query queue between rounds.
///
/// # Example
///
/// ```
/// use rfid_protocols::AqsSession;
/// use rfid_sim::rounds::{run_rounds, ChurnModel};
/// use rfid_sim::SimConfig;
///
/// let mut session = AqsSession::new();
/// let report = run_rounds(&mut session, 200, 3, &ChurnModel::none(),
///                         &SimConfig::default())?;
/// // Warm rounds re-read the static population without any collision.
/// assert_eq!(report.per_round[1].slots.collision, 0);
/// # Ok::<(), rfid_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AqsSession {
    leaves: Vec<Prefix>,
}

impl AqsSession {
    /// Creates a cold session (first round behaves like one-shot AQS).
    #[must_use]
    pub fn new() -> Self {
        AqsSession::default()
    }

    /// Number of leaf queries carried from the previous round.
    #[must_use]
    pub fn carried_leaves(&self) -> usize {
        self.leaves.len()
    }
}

impl MultiRoundSession for AqsSession {
    fn name(&self) -> &str {
        "AQS-session"
    }

    fn run_round(
        &mut self,
        tags: &[TagId],
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> Result<InventoryReport, SimError> {
        let initial: Vec<Prefix> = if self.leaves.is_empty() {
            vec![Prefix::EMPTY.child(0), Prefix::EMPTY.child(1)]
        } else {
            std::mem::take(&mut self.leaves)
        };
        let mut leaves = Vec::new();
        let report = run_query_tree(self.name(), &initial, tags, config, rng, Some(&mut leaves))?;
        if tags.is_empty() {
            // Keep the old partition; an empty round teaches nothing.
            self.leaves = initial;
        } else {
            // Myung-Lee's QueryDeletion: merge sibling leaves that both
            // came back empty, otherwise departures grow the carried queue
            // without bound under churn.
            self.leaves = merge_empty_siblings(leaves, tags);
        }
        Ok(report)
    }
}

/// Collapses pairs of sibling leaves that currently match no tag into
/// their parent query, repeating until no pair merges. Keeps the leaf set
/// a partition of the ID space (required so future arrivals are caught)
/// while bounding its size near the live population.
fn merge_empty_siblings(mut leaves: Vec<Prefix>, tags: &[TagId]) -> Vec<Prefix> {
    use std::collections::HashSet;
    let occupied: Vec<TagId> = tags.to_vec();
    loop {
        let leaf_set: HashSet<Prefix> = leaves.iter().copied().collect();
        let mut merged: HashSet<Prefix> = HashSet::new();
        let mut next: Vec<Prefix> = Vec::with_capacity(leaves.len());
        let mut changed = false;
        for &leaf in &leaves {
            if merged.contains(&leaf) {
                continue;
            }
            let (Some(parent), Some(sibling)) = (leaf.parent(), leaf.sibling()) else {
                next.push(leaf);
                continue;
            };
            let both_present = leaf_set.contains(&sibling) && !merged.contains(&sibling);
            if both_present
                && !prefix_matches_any(leaf, &occupied)
                && !prefix_matches_any(sibling, &occupied)
            {
                merged.insert(leaf);
                merged.insert(sibling);
                next.push(parent);
                changed = true;
            } else {
                next.push(leaf);
            }
        }
        leaves = next;
        if !changed {
            return leaves;
        }
    }
}

fn prefix_matches_any(prefix: Prefix, tags: &[TagId]) -> bool {
    let (lo, hi) = prefix.range();
    tags.iter().any(|t| {
        let p = t.payload();
        p >= lo && p < hi
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::rounds::{run_rounds, ChurnModel};

    #[test]
    fn static_population_rereads_without_collisions() {
        let mut session = AqsSession::new();
        let report = run_rounds(
            &mut session,
            400,
            3,
            &ChurnModel::none(),
            &SimConfig::default().with_seed(1),
        )
        .unwrap();
        // Cold round pays the full tree...
        assert!(report.per_round[0].slots.collision > 300);
        // ...warm rounds are collision-free: one query per leaf.
        for round in 1..3 {
            assert_eq!(report.per_round[round].slots.collision, 0, "round {round}");
            assert_eq!(report.per_round[round].identified, 400);
        }
        assert!(report.warm_throughput() > report.per_round[0].throughput_tags_per_sec);
        assert!(session.carried_leaves() >= 400);
    }

    #[test]
    fn warm_round_still_pays_empty_leaves() {
        // The leaf partition contains the empties too, so a warm AQS round
        // costs (singleton + empty) slots — unlike warm ABS, which prunes
        // to exactly N slots. This is the known AQS/ABS gap under reading
        // (Myung-Lee's own comparison).
        let mut session = AqsSession::new();
        let report = run_rounds(
            &mut session,
            400,
            2,
            &ChurnModel::none(),
            &SimConfig::default().with_seed(2),
        )
        .unwrap();
        let warm = &report.per_round[1].slots;
        assert_eq!(warm.singleton, 400);
        assert!(warm.empty > 0);
    }

    #[test]
    fn arrivals_split_only_their_leaves() {
        let mut session = AqsSession::new();
        let report = run_rounds(
            &mut session,
            400,
            2,
            &ChurnModel::new(0.0, 40),
            &SimConfig::default().with_seed(3),
        )
        .unwrap();
        let warm = &report.per_round[1].slots;
        assert_eq!(report.per_round[1].identified, 440);
        assert!(warm.collision < 160, "{warm:?}");
    }

    #[test]
    fn leaf_queue_bounded_under_churn() {
        // Without QueryDeletion the carried queue grows every round;
        // with it, the leaf count stays proportional to the population.
        let mut session = AqsSession::new();
        let churn = ChurnModel::new(0.3, 120);
        let report = run_rounds(
            &mut session,
            400,
            12,
            &churn,
            &SimConfig::default().with_seed(9),
        )
        .unwrap();
        let final_pop = *report.population_per_round.last().unwrap();
        let leaves = session.carried_leaves();
        assert!(
            leaves < 4 * final_pop.max(1),
            "leaf queue {leaves} for population {final_pop}"
        );
    }

    #[test]
    fn empty_round_keeps_partition() {
        let mut session = AqsSession::new();
        let mut rng = rfid_sim::seeded_rng(4);
        let config = SimConfig::default();
        let tags = rfid_types::population::uniform(&mut rng, 64);
        session.run_round(&tags, &config, &mut rng).unwrap();
        let leaves_before = session.carried_leaves();
        session.run_round(&[], &config, &mut rng).unwrap();
        assert_eq!(session.carried_leaves(), leaves_before);
    }
}
