//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset this workspace uses.
//!
//! Measurement model: each benchmark warms up once, then runs batches of
//! iterations until a small time budget is exhausted and reports the best
//! observed per-iteration time. That is deliberately much cheaper than
//! upstream Criterion (no bootstrapping, no plots, no baselines) so that
//! `cargo test`, which also executes `harness = false` bench targets, stays
//! fast. Treat the numbers as indicative; use longer budgets via
//! `CRITERION_BUDGET_MS` when comparing changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_millis(ms)
}

/// Benchmark driver handed to registered benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors upstream's CLI-configuration hook; accepts and ignores the
    /// arguments cargo passes (e.g. `--bench`, `--test`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks (subset of upstream's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), &mut f);
        self
    }

    /// Runs `f` with `input` as a named benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An ID made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// An ID made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_owned())
    }
}

/// Result of timing one routine with [`measure_with_budget`]: the best
/// observed per-iteration wall time and the total number of iterations run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Best observed nanoseconds per iteration across all batches.
    pub best_ns_per_iter: f64,
    /// Total iterations executed (including the calibration call).
    pub iters: u64,
}

/// Times `routine` under an explicit time budget and returns the best
/// observed per-iteration cost.
///
/// This is the measurement core behind [`Bencher::iter`], exposed so that
/// programmatic harnesses (e.g. a JSON-emitting perf runner) can reuse the
/// exact same timing discipline as the registered `criterion_group!`
/// benchmarks: one calibration call, then batches sized for ~10 batches
/// within `budget`, keeping the minimum batch mean.
pub fn measure_with_budget<O, R>(budget: Duration, mut routine: R) -> Measurement
where
    R: FnMut() -> O,
{
    // Warm-up + calibration: one untimed call.
    let start = Instant::now();
    black_box(routine());
    let single = start.elapsed();
    let mut iters = 1u64;

    let deadline = Instant::now() + budget;
    // Pick a batch size that aims for ~10 batches within the budget.
    let batch = if single.is_zero() {
        1_000
    } else {
        (budget.as_nanos() / 10 / single.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };
    let mut best = f64::INFINITY;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_nanos() as f64 / batch as f64;
        if elapsed < best {
            best = elapsed;
        }
        iters += batch;
        if Instant::now() >= deadline {
            break;
        }
    }
    Measurement {
        best_ns_per_iter: best,
        iters,
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    best_ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping the best observed per-iteration cost.
    pub fn iter<O, R>(&mut self, routine: R)
    where
        R: FnMut() -> O,
    {
        let m = measure_with_budget(budget(), routine);
        self.best_ns_per_iter = m.best_ns_per_iter;
        self.iters = m.iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher {
        best_ns_per_iter: f64::NAN,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name:<48} (no iterations)");
    } else {
        println!(
            "{name:<48} {:>14.1} ns/iter ({} iters)",
            bencher.best_ns_per_iter, bencher.iters
        );
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn measure_with_budget_reports() {
        let mut runs = 0u64;
        let m = measure_with_budget(Duration::from_millis(2), || {
            runs += 1;
            black_box(runs)
        });
        assert!(m.iters > 0);
        assert!(m.best_ns_per_iter.is_finite());
        assert_eq!(runs, m.iters);
    }

    #[test]
    fn groups_and_ids() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        group.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| black_box(7)));
        group.finish();
    }
}
