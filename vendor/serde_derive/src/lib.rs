//! Derive macros for the vendored serde stand-in.
//!
//! Nothing in this workspace consumes `Serialize`/`Deserialize` bounds, so
//! the derives expand to nothing: they exist purely so that
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`
//! attributes compile when the feature is enabled.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
