//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only references serde behind off-by-default `serde`
//! feature gates (`#[cfg_attr(feature = "serde", derive(...))]`), but cargo
//! must still resolve the optional dependency, and this container has no
//! network access to the registry. This crate provides just enough surface
//! for those gated builds to compile: marker traits named `Serialize` /
//! `Deserialize` and derive macros that expand to empty impls. It does NOT
//! implement any serialization format; swap in the real serde before adding
//! formats like serde_json.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
