//! Value distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;

/// Types that can produce values of `T` from a bit source.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(&Standard, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable uniformly from a range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)` (`hi` exclusive).
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]` (`hi` inclusive).
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    /// Range forms accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Unbiased draw from `[0, n)` via the bitmask-rejection method.
    #[inline]
    fn below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        let mask = u64::MAX >> (n - 1).leading_zeros();
        loop {
            let x = rng.next_u64() & mask;
            if x < n {
                return x;
            }
        }
    }

    #[inline]
    fn below_u128<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
        debug_assert!(n > 0);
        if let Ok(small) = u64::try_from(n) {
            return u128::from(below_u64(rng, small));
        }
        let mask = u128::MAX >> (n - 1).leading_zeros();
        loop {
            let x = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) & mask;
            if x < n {
                return x;
            }
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    lo + below_u64(rng, (hi - lo) as u64) as $t
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + below_u64(rng, span + 1) as $t
                }
            }
        )*};
    }
    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    lo.wrapping_add(below_u64(rng, span) as $t)
                }
                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below_u64(rng, span + 1) as $t)
                }
            }
        )*};
    }
    uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl SampleUniform for u128 {
        #[inline]
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            lo + below_u128(rng, hi - lo)
        }
        #[inline]
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let span = hi - lo;
            if span == u128::MAX {
                return (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            }
            lo + below_u128(rng, span + 1)
        }
    }

    impl SampleUniform for f64 {
        #[inline]
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let x = lo + unit * (hi - lo);
            // Floating-point rounding can land exactly on `hi`; fold back.
            if x >= hi {
                lo
            } else {
                x
            }
        }
        #[inline]
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            let x = lo + unit * (hi - lo);
            if x >= hi {
                lo
            } else {
                x
            }
        }
        #[inline]
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            lo + unit * (hi - lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::{SampleRange, SampleUniform};
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn u128_full_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: u128 = rng.gen();
        let y: u128 = rng.gen();
        assert_ne!(x, y);
        // High halves should be populated sometimes.
        let any_high = (0..32).any(|_| rng.gen::<u128>() >> 64 != 0);
        assert!(any_high);
    }

    #[test]
    fn half_open_never_hits_end() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100_000 {
            let x = f64::sample_half_open(&mut rng, 0.0, 1e-300);
            assert!(x < 1e-300);
        }
    }

    #[test]
    fn inclusive_single_point() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!((5u32..=5).sample_single(&mut rng), 5);
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&x));
        }
    }
}
