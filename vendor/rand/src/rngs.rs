//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Unlike upstream rand's ChaCha12-based `StdRng`, this is a small
/// non-cryptographic generator; it passes the statistical checks this
/// workspace relies on (uniformity, binomial moments) and is bit-stable
/// across platforms, which is all the simulators require.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn known_good_dispersion() {
        // Consecutive outputs should differ in roughly half their bits.
        let mut rng = StdRng::seed_from_u64(42);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let diff = (a ^ b).count_ones();
        assert!((16..=48).contains(&diff), "bit diff {diff}");
    }
}
