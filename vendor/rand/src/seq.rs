//! Sequence helpers: slice shuffling/choosing and distinct-index sampling.

use crate::Rng;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod index {
    //! Sampling distinct indices from `0..length`.

    use crate::{Rng, RngCore};

    /// A set of distinct indices (compatible subset of rand's `IndexVec`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consumes into a plain vector.
        #[must_use]
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        #[must_use]
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length`.
    ///
    /// Rejection sampling when `amount` is small relative to `length`
    /// (`O(amount²)` with a tiny constant — the simulators draw 1–4 per
    /// slot), partial Fisher–Yates otherwise (`O(length)` memory).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        let mut picked = Vec::new();
        sample_into(rng, length, amount, &mut picked);
        IndexVec(picked)
    }

    /// Allocation-free variant of [`sample`]: clears `out` and fills it with
    /// `amount` distinct indices from `0..length`, reusing its capacity.
    ///
    /// Draws the exact same RNG value sequence as [`sample`] (the hot slot
    /// loops rely on this for byte-identical reports); the large-draw branch
    /// reuses `out` itself as the Fisher–Yates pool.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample_into<R: RngCore + ?Sized>(
        rng: &mut R,
        length: usize,
        amount: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from {length}"
        );
        out.clear();
        if amount == 0 {
            return;
        }
        if amount * 8 <= length {
            // Small draw: rejection against the already-picked set.
            while out.len() < amount {
                let candidate = rng.gen_range(0..length);
                if !out.contains(&candidate) {
                    out.push(candidate);
                }
            }
        } else {
            // Large draw: partial Fisher–Yates over the full index range.
            out.extend(0..length);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                out.swap(i, j);
            }
            out.truncate(amount);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::index;
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }

    #[test]
    fn sample_distinct_small_and_large() {
        let mut rng = StdRng::seed_from_u64(3);
        for (length, amount) in [(10_000, 3), (50, 40), (5, 5), (7, 0)] {
            let picks = index::sample(&mut rng, length, amount).into_vec();
            assert_eq!(picks.len(), amount);
            let set: std::collections::HashSet<_> = picks.iter().collect();
            assert_eq!(set.len(), amount, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < length));
        }
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            for i in index::sample(&mut rng, 10, 2).iter() {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = index::sample(&mut rng, 3, 4);
    }

    #[test]
    fn sample_into_matches_sample_draw_for_draw() {
        // Both branches (rejection and Fisher–Yates), same seed: identical
        // picks AND identical RNG state afterwards.
        for (length, amount) in [(10_000, 3), (10_000, 0), (50, 40), (5, 5), (16, 2)] {
            let mut rng_a = StdRng::seed_from_u64(42);
            let mut rng_b = StdRng::seed_from_u64(42);
            let mut reused = vec![7usize; 3]; // stale contents must not leak
            for round in 0..3 {
                let picks = index::sample(&mut rng_a, length, amount).into_vec();
                index::sample_into(&mut rng_b, length, amount, &mut reused);
                assert_eq!(
                    picks, reused,
                    "length={length} amount={amount} round={round}"
                );
            }
        }
    }
}
