//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the subset of the rand 0.8 API it actually uses is vendored here:
//! [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), [`rngs::StdRng`], [`seq::SliceRandom`] and
//! [`seq::index::sample`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, statistically strong, and
//! fast. It is **not** the upstream ChaCha12 `StdRng`, so absolute random
//! streams differ from upstream rand; everything in this workspace derives
//! expectations statistically or from fixed seeds of *this* generator, so
//! that difference is invisible to the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Byte array holding the generator's full seed.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` by expanding it with SplitMix64
    /// (the same construction upstream rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension over [`RngCore`]: typed values, ranges, booleans.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = r.gen_range(0u32..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
