//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset this workspace uses.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with its generated inputs
//!   (`Debug`-formatted) and the deterministic per-test seed, which is
//!   enough to reproduce: the generator stream depends only on the test
//!   function's name, so re-running the test replays the identical cases.
//! * **No persistence files**, forking, or timeouts.
//!
//! Supported surface: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`], range and tuple strategies, `prop_map`,
//! [`collection::vec`] / [`collection::hash_set`], [`bool::weighted`], and
//! [`prelude::any`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// Returns a strategy that is `true` with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`.
    #[must_use]
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1], got {probability}"
        );
        Weighted(probability)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<f64>() < self.0
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __new_rng(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name: a stable, collision-unlikely seed so each
    // test gets its own reproducible stream.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(hash)
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::__new_rng(stringify!($name));
            for case in 0..config.cases {
                #[allow(unused_parens)]
                let values = (
                    $( $crate::strategy::Strategy::new_value(&($strat), &mut rng) ),*
                );
                let repr = format!("{values:?}");
                #[allow(unused_parens)]
                let ( $($pat),* ) = values;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        error,
                        repr,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body; failures report the
/// generated inputs instead of unwinding through them.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -1.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(
            (a, b) in (0u64..10, 0u64..10).prop_map(|(x, y)| (x + 100, y + 200)),
        ) {
            prop_assert!((100..110).contains(&a));
            prop_assert_ne!(a, b);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..5, 2..6),
            s in crate::collection::hash_set(0u32..1000, 3..7),
            exact in crate::collection::vec(crate::bool::weighted(0.5), 4..=4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((3..7).contains(&s.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn any_spans_the_domain(x in any::<u64>(), j in Just(41usize)) {
            prop_assert_eq!(j, 41);
            let _ = x;
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let message = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(message.contains("inputs:"), "message: {message}");
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let a: Vec<u32> = {
            let mut rng = crate::__new_rng("stream_test");
            (0..8).map(|_| (0u32..1000).new_value(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = crate::__new_rng("stream_test");
            (0..8).map(|_| (0u32..1000).new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
