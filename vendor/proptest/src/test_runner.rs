//! Test-runner configuration and failure type.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns the default configuration with `cases` overridden.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carried as `Err` out of the case body).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
