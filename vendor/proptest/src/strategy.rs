//! The [`Strategy`] trait and its combinators.

use rand::distributions::uniform::SampleUniform;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// is simply a deterministic function of the test's RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.strategy.new_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform,
    Range<T>: Clone,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform,
    RangeInclusive<T>: Clone,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy over a type's "natural" domain (full integer range, etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the natural full-domain strategy for `T`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}
