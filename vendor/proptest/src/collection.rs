//! Collection strategies: vectors and hash sets of generated values.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Returns a strategy producing vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy producing `HashSet`s of values from an element strategy.
#[derive(Debug, Clone, Copy)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Returns a strategy producing hash sets whose size is drawn from `size`.
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned at the largest size reached after a bounded number of draws
/// (upstream proptest rejects the case instead; no caller here depends on
/// that distinction).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        let max_attempts = 64 * (target + 1);
        for _ in 0..max_attempts {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.new_value(rng));
        }
        set
    }
}
